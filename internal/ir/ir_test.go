package ir

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func sampleDocs() []map[int]int {
	// Three documents over a 4-term space.
	return []map[int]int{
		{0: 2, 1: 1},
		{0: 1, 2: 3},
		{3: 5},
	}
}

func TestBuildIndexDocFreq(t *testing.T) {
	ix := BuildIndex(sampleDocs(), 4)
	want := []int{2, 1, 1, 1}
	for tm, w := range want {
		if ix.DocFreq(tm) != w {
			t.Fatalf("df[%d] = %d, want %d", tm, ix.DocFreq(tm), w)
		}
	}
	if ix.NumDocs() != 3 || ix.NumTerms() != 4 {
		t.Fatal("sizes wrong")
	}
}

func TestTFIDFWeights(t *testing.T) {
	ix := BuildIndex(sampleDocs(), 4)
	// Doc 0: counts {0:2, 1:1}, total 3.
	// w(0, d0) = (2/3)·log(3/2); w(1, d0) = (1/3)·log(3/1).
	qw := ix.QueryWeights(map[int]int{0: 2, 1: 1})
	if !almostEq(qw[0], (2.0/3.0)*math.Log(1.5), 1e-12) {
		t.Fatalf("w(0) = %v", qw[0])
	}
	if !almostEq(qw[1], (1.0/3.0)*math.Log(3), 1e-12) {
		t.Fatalf("w(1) = %v", qw[1])
	}
}

func TestQueryRanksExactMatchFirst(t *testing.T) {
	ix := BuildIndex(sampleDocs(), 4)
	res := ix.Query(map[int]int{2: 1}, 0)
	if len(res) != 1 || res[0].Doc != 1 {
		t.Fatalf("query for term 2 should hit doc 1 only: %v", res)
	}
	res = ix.Query(map[int]int{0: 1}, 0)
	if len(res) != 2 {
		t.Fatalf("term 0 appears in 2 docs, got %v", res)
	}
}

func TestQueryCosineSelf(t *testing.T) {
	// Querying with exactly a document's counts must rank it with
	// cosine 1 (identical direction).
	docs := []map[int]int{
		{0: 1, 1: 2},
		{2: 4},
		{0: 3, 2: 1},
	}
	ix := BuildIndex(docs, 3)
	res := ix.Query(docs[0], 1)
	if len(res) == 0 || res[0].Doc != 0 {
		t.Fatalf("self query should top-rank doc 0: %v", res)
	}
	if !almostEq(res[0].Score, 1, 1e-12) {
		t.Fatalf("self cosine = %v, want 1", res[0].Score)
	}
}

func TestQueryUnknownTermsIgnored(t *testing.T) {
	ix := BuildIndex(sampleDocs(), 5)
	// Term 4 never occurs: query containing it alone yields nothing.
	if res := ix.Query(map[int]int{4: 1}, 0); len(res) != 0 {
		t.Fatalf("unknown term should return nothing, got %v", res)
	}
	// Mixed with a known term, the known part still matches.
	if res := ix.Query(map[int]int{4: 1, 3: 1}, 0); len(res) != 1 || res[0].Doc != 2 {
		t.Fatalf("mixed query wrong: %v", res)
	}
}

func TestUbiquitousTermHasZeroWeight(t *testing.T) {
	docs := []map[int]int{{0: 1, 1: 1}, {0: 2, 1: 3}, {0: 5}}
	ix := BuildIndex(docs, 2)
	// Term 0 is in every doc: idf = log(1) = 0.
	qw := ix.QueryWeights(map[int]int{0: 7})
	if len(qw) != 0 {
		t.Fatalf("ubiquitous term should have zero weight: %v", qw)
	}
}

func TestTopNTruncation(t *testing.T) {
	docs := make([]map[int]int, 10)
	for i := range docs {
		docs[i] = map[int]int{0: i + 1, 1: 1}
	}
	// One document without term 0 so that idf(0) > 0.
	docs = append(docs, map[int]int{1: 2})
	ix := BuildIndex(docs, 2)
	res := ix.Query(map[int]int{0: 1}, 3)
	if len(res) != 3 {
		t.Fatalf("topN=3 returned %d", len(res))
	}
	for i := 1; i < len(res); i++ {
		if res[i].Score > res[i-1].Score {
			t.Fatal("results not sorted")
		}
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	docs := []map[int]int{{0: 1}, {0: 1}, {0: 1, 1: 1}, {1: 2}}
	ix := BuildIndex(docs, 2)
	a := ix.Query(map[int]int{0: 1}, 0)
	b := ix.Query(map[int]int{0: 1}, 0)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("query not deterministic")
		}
	}
	// Docs 0 and 1 have identical vectors: tie must break by id.
	if a[0].Doc > a[1].Doc && almostEq(a[0].Score, a[1].Score, 1e-12) {
		t.Fatal("tie not broken by doc id")
	}
}

func TestMapToConcepts(t *testing.T) {
	assign := []int{0, 0, 1, -1}
	got := MapToConcepts(map[int]int{0: 2, 1: 3, 2: 1, 3: 9}, assign)
	if got[0] != 5 || got[1] != 1 {
		t.Fatalf("MapToConcepts = %v", got)
	}
	if _, ok := got[-1]; ok {
		t.Fatal("unassigned tag leaked")
	}
	// Out-of-range tags are dropped, not panicking.
	got = MapToConcepts(map[int]int{7: 1}, assign)
	if len(got) != 0 {
		t.Fatalf("out-of-range tag should be dropped: %v", got)
	}
}

func TestCosineScoreBounds(t *testing.T) {
	// Property: cosine scores lie in [−1, 1] (practically [0, 1] with
	// non-negative counts).
	f := func(counts []uint8) bool {
		docs := []map[int]int{{}, {}, {}}
		for i, c := range counts {
			docs[i%3][int(c)%6] += int(c%4) + 1
		}
		ix := BuildIndex(docs, 6)
		for _, q := range docs {
			if len(q) == 0 {
				continue
			}
			for _, r := range ix.Query(q, 0) {
				if r.Score < -1e-9 || r.Score > 1+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyQueryAndEmptyIndex(t *testing.T) {
	ix := BuildIndex(nil, 3)
	if res := ix.Query(map[int]int{0: 1}, 0); len(res) != 0 {
		t.Fatal("empty index should return nothing")
	}
	ix2 := BuildIndex(sampleDocs(), 4)
	if res := ix2.Query(map[int]int{}, 0); len(res) != 0 {
		t.Fatal("empty query should return nothing")
	}
}
