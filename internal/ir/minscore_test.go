package ir

import (
	"math"
	"testing"
)

// gradedIndex builds a collection whose term-0 query scores are strictly
// graded: documents mix term 0 and term 1 in different proportions, plus
// term-1-only documents that keep every idf positive.
func gradedIndex(docs int) *Index {
	collection := make([]map[int]int, 0, docs+4)
	for d := range docs {
		collection = append(collection, map[int]int{0: docs - d, 1: d + 1})
	}
	for range 4 {
		collection = append(collection, map[int]int{1: 3})
	}
	return BuildIndex(collection, 2)
}

// TestQueryMinAppliesThresholdBeforeTruncation is the index-level
// regression for the Limit/MinScore undershoot: the threshold must be
// applied inside the bounded heap, so the topN slots are spent only on
// documents at or above it — QueryMin(counts, n, s) equals "filter the
// full ranking by s, then take the first n" for every n and s.
func TestQueryMinAppliesThresholdBeforeTruncation(t *testing.T) {
	ix := gradedIndex(20)
	counts := map[int]int{0: 1}

	full := ix.Query(counts, 0)
	if len(full) < 15 {
		t.Fatalf("graded collection too small: %d matches", len(full))
	}
	for i := 1; i < len(full); i++ {
		if full[i].Score > full[i-1].Score {
			t.Fatal("full ranking not sorted")
		}
	}

	for _, topN := range []int{1, 5, 10, 0} {
		for _, cut := range []int{1, 5, 10, 15, len(full)} {
			minScore := full[cut-1].Score
			var oracle []Scored
			for _, s := range full {
				if s.Score >= minScore {
					oracle = append(oracle, s)
				}
			}
			if topN > 0 && len(oracle) > topN {
				oracle = oracle[:topN]
			}
			got := ix.QueryMin(counts, topN, minScore)
			if len(got) != len(oracle) {
				t.Fatalf("topN=%d cut=%d: %d results, want %d", topN, cut, len(got), len(oracle))
			}
			for i := range oracle {
				if got[i] != oracle[i] {
					t.Fatalf("topN=%d cut=%d result %d: %+v, want %+v", topN, cut, i, got[i], oracle[i])
				}
			}
		}
	}

	// A document scoring exactly minScore is kept (the filter is
	// strictly-below), on both the heap and the full-sort paths.
	exact := full[4].Score
	if got := ix.QueryMin(counts, 5, exact); len(got) == 0 || got[len(got)-1].Score != exact {
		t.Fatalf("boundary document dropped: %+v", got)
	}
	if got := ix.QueryMin(counts, 0, exact); got[len(got)-1].Score != exact {
		t.Fatalf("boundary document dropped on full path: %+v", got)
	}

	// An unreachable threshold yields no results rather than an error.
	if got := ix.QueryMin(counts, 10, 2); len(got) != 0 {
		t.Fatalf("impossible threshold returned %v", got)
	}

	// Query is QueryMin without a threshold.
	plain := ix.Query(counts, 7)
	thresh := ix.QueryMin(counts, 7, math.Inf(-1))
	if len(plain) != len(thresh) {
		t.Fatalf("Query/QueryMin diverge: %d vs %d", len(plain), len(thresh))
	}
	for i := range plain {
		if plain[i] != thresh[i] {
			t.Fatalf("Query/QueryMin diverge at %d", i)
		}
	}
}
