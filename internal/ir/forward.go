package ir

// Forward is the doc-major view of an index: for each document, its
// (term, weight) pairs in ascending term order, plus each document's
// dominant term and the inverted lists of documents grouped by dominant
// term. It is the stage-two seam of the two-stage retrieval pipeline —
// rescoring a candidate against a query walks the document's own terms
// instead of every posting list — and the substrate of the "concept"
// candidate source, which probes only the dominant-term lists of the
// query's own terms.
//
// Scores computed through Forward are bit-identical to the inverted
// scan: both accumulate the matched (query term × document weight)
// products in ascending term order and divide by the same query and
// document norms, so a rerank at full depth reproduces the monolithic
// ranking exactly.
type Forward struct {
	ix *Index
	// docs[d] lists document d's (term, weight) pairs, ascending by term.
	docs [][]TermWeight
	// dominant[d] is the term with the largest weight in document d
	// (ties to the lowest term id); -1 for empty documents.
	dominant []int
	// lists[t] lists the documents whose dominant term is t, ascending by
	// document id. The lists partition the non-empty documents.
	lists [][]int
}

// TermWeight is one (term, tf-idf weight) entry of a document vector.
type TermWeight struct {
	Term   int
	Weight float64
}

// Forward returns the doc-major view of the index, building it on first
// use (cached; safe for concurrent callers).
func (ix *Index) Forward() *Forward {
	ix.fwdOnce.Do(func() {
		f := &Forward{
			ix:       ix,
			docs:     make([][]TermWeight, ix.numDocs),
			dominant: make([]int, ix.numDocs),
			lists:    make([][]int, ix.numTerms),
		}
		for d := range f.dominant {
			f.dominant[d] = -1
		}
		// Ascending term-major fill: postings are doc-sorted, so each
		// document's list comes out in ascending term order — the same
		// accumulation order the inverted scan uses.
		for t, ps := range ix.postings {
			for _, p := range ps {
				f.docs[p.doc] = append(f.docs[p.doc], TermWeight{Term: t, Weight: p.weight})
			}
		}
		for d, tws := range f.docs {
			best, bw := -1, 0.0
			for _, tw := range tws {
				if best < 0 || tw.Weight > bw {
					best, bw = tw.Term, tw.Weight
				}
			}
			f.dominant[d] = best
			if best >= 0 {
				f.lists[best] = append(f.lists[best], d)
			}
		}
		ix.fwd = f
	})
	return ix.fwd
}

// Doc returns document d's term vector in ascending term order. The
// returned slice is shared; callers must not mutate it.
func (f *Forward) Doc(d int) []TermWeight { return f.docs[d] }

// Dominant returns the dominant term of document d (-1 if empty).
func (f *Forward) Dominant(d int) int { return f.dominant[d] }

// List returns the documents whose dominant term is t, ascending. The
// returned slice is shared; callers must not mutate it.
func (f *Forward) List(t int) []int { return f.lists[t] }

// Score recomputes document d's exact cosine score against a tf-idf
// query vector with norm qnorm (QueryNorm). The boolean is false when
// the document matches no query term (or has a zero norm) — such
// documents never enter a ranking, matching the inverted scan, which
// only scores documents reached through a query term's posting list.
func (f *Forward) Score(qw map[int]float64, qnorm float64, d int) (float64, bool) {
	norm := f.ix.norms[d]
	if norm == 0 {
		return 0, false
	}
	var dot float64
	matched := false
	for _, tw := range f.docs[d] {
		if w, ok := qw[tw.Term]; ok {
			dot += w * tw.Weight
			matched = true
		}
	}
	if !matched {
		return 0, false
	}
	return dot / (qnorm * norm), true
}

// Affinity is the user-mode bias of document d: the inner product of a
// per-term affinity vector (a compacted user-factor row) with the
// document's tf-idf weights, divided by the document norm so it lives
// on the same scale as the cosine scores it blends with. Terms beyond
// len(user) contribute nothing; a zero-norm document scores zero.
func (f *Forward) Affinity(user []float64, d int) float64 {
	norm := f.ix.norms[d]
	if norm == 0 {
		return 0
	}
	var dot float64
	for _, tw := range f.docs[d] {
		if tw.Term < len(user) {
			dot += user[tw.Term] * tw.Weight
		}
	}
	return dot / norm
}
