package ir

import "testing"

func snapshotTestIndex() *Index {
	docs := []map[int]int{
		{0: 2, 1: 1},
		{1: 3},
		{0: 1, 2: 2},
		{},
	}
	return BuildIndex(docs, 3)
}

func TestSnapshotRoundtrip(t *testing.T) {
	ix := snapshotTestIndex()
	got, err := FromSnapshot(ix.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if got.NumDocs() != ix.NumDocs() || got.NumTerms() != ix.NumTerms() {
		t.Fatalf("dims changed: %d/%d vs %d/%d", got.NumDocs(), got.NumTerms(), ix.NumDocs(), ix.NumTerms())
	}
	for _, q := range []map[int]int{{0: 1}, {1: 2}, {0: 1, 2: 1}} {
		a, b := ix.Query(q, 0), got.Query(q, 0)
		if len(a) != len(b) {
			t.Fatalf("query %v: %d vs %d results", q, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("query %v result %d: %+v vs %+v", q, i, a[i], b[i])
			}
		}
	}
}

func TestSnapshotIsACopy(t *testing.T) {
	ix := snapshotTestIndex()
	s := ix.Snapshot()
	s.DF[0] = 99
	if len(s.Postings[0]) > 0 {
		s.Postings[0][0].Weight = 42
	}
	s2 := ix.Snapshot()
	if s2.DF[0] == 99 {
		t.Fatal("snapshot shares df with index")
	}
	if len(s2.Postings[0]) > 0 && s2.Postings[0][0].Weight == 42 {
		t.Fatal("snapshot shares postings with index")
	}
}

func TestFromSnapshotValidates(t *testing.T) {
	base := snapshotTestIndex().Snapshot()

	bad := *base
	bad.DF = bad.DF[:1]
	if _, err := FromSnapshot(&bad); err == nil {
		t.Fatal("short df should be rejected")
	}

	bad = *base
	bad.Norms = append(bad.Norms, 1)
	if _, err := FromSnapshot(&bad); err == nil {
		t.Fatal("extra norms should be rejected")
	}

	bad = *base
	bad.Postings = make([][]Posting, len(base.Postings))
	copy(bad.Postings, base.Postings)
	bad.Postings[0] = []Posting{{Doc: 999, Weight: 1}}
	if _, err := FromSnapshot(&bad); err == nil {
		t.Fatal("out-of-range doc should be rejected")
	}
}
