// Package ir implements the vector-space retrieval model of Section III:
// documents (resources) and queries represented as sparse tf-idf vectors
// over a term space (raw tags for the BOW baseline, distilled concepts
// for CubeLSI and friends), an inverted index, and cosine-similarity
// ranking (Equations 1–4).
package ir

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/topk"
)

// Scored is one ranked result.
type Scored struct {
	Doc   int
	Score float64
}

// Index is an inverted tf-idf index over a fixed document collection.
type Index struct {
	numTerms int
	numDocs  int
	df       []int // document frequency per term
	// postings[t] lists (doc, weight) pairs for term t, where weight is
	// the document's tf-idf weight for t.
	postings [][]posting
	norms    []float64 // per-document vector norms

	// fwd is the lazily built doc-major view of the postings (Forward),
	// shared by every engine snapshot holding this index.
	fwdOnce sync.Once
	fwd     *Forward
}

type posting struct {
	doc    int
	weight float64
}

// BuildIndex constructs the index from per-document term counts:
// docs[d][t] = c(t, d), the occurrence count of term t in document d
// (for resources, the number of users who assigned the term).
//
// Weights follow Equations 1–2: w(t, d) = tf(t, d) · log(N / n_t) with
// tf normalized by the document's total count. Terms that appear in every
// document receive weight zero (log 1), exactly as the formula dictates.
func BuildIndex(docs []map[int]int, numTerms int) *Index {
	fdocs := make([]map[int]float64, len(docs))
	for d, counts := range docs {
		fd := make(map[int]float64, len(counts))
		for t, c := range counts {
			fd[t] = float64(c)
		}
		fdocs[d] = fd
	}
	return BuildIndexFloat(fdocs, numTerms)
}

// BuildIndexFloat is BuildIndex over fractional term counts, as produced
// by the soft concept mapping (footnote 5's extension): a document's
// "count" for a concept may be a weighted sum of tag memberships.
func BuildIndexFloat(docs []map[int]float64, numTerms int) *Index {
	ix := &Index{
		numTerms: numTerms,
		numDocs:  len(docs),
		df:       make([]int, numTerms),
		postings: make([][]posting, numTerms),
		norms:    make([]float64, len(docs)),
	}
	for _, counts := range docs {
		for t, c := range counts {
			ix.checkTerm(t)
			if c > 0 {
				ix.df[t]++
			}
		}
	}
	n := float64(len(docs))
	for d, counts := range docs {
		// Iterate terms in sorted order so floating-point accumulation —
		// the document total here as much as the norm below — is
		// deterministic across runs (map order is randomized).
		terms := sortedTerms(counts)
		var total float64
		for _, t := range terms {
			total += counts[t]
		}
		if total == 0 {
			continue
		}
		var norm2 float64
		for _, t := range terms {
			c := counts[t]
			if c <= 0 || ix.df[t] == 0 {
				continue
			}
			w := (c / total) * math.Log(n/float64(ix.df[t]))
			if w == 0 {
				continue
			}
			ix.postings[t] = append(ix.postings[t], posting{doc: d, weight: w})
			norm2 += w * w
		}
		ix.norms[d] = math.Sqrt(norm2)
	}
	for t := range ix.postings {
		sort.Slice(ix.postings[t], func(a, b int) bool { return ix.postings[t][a].doc < ix.postings[t][b].doc })
	}
	return ix
}

func (ix *Index) checkTerm(t int) {
	if t < 0 || t >= ix.numTerms {
		panic(fmt.Sprintf("ir: term %d out of range [0,%d)", t, ix.numTerms))
	}
}

// NumDocs returns the collection size N.
func (ix *Index) NumDocs() int { return ix.numDocs }

// NumTerms returns the term-space size.
func (ix *Index) NumTerms() int { return ix.numTerms }

// DocFreq returns n_t, the number of documents containing term t.
func (ix *Index) DocFreq(t int) int {
	ix.checkTerm(t)
	return ix.df[t]
}

// QueryWeights converts raw query term counts into the query's tf-idf
// vector using the same weighting as documents (Section III applies the
// identical transformation to queries).
func (ix *Index) QueryWeights(counts map[int]int) map[int]float64 {
	var total int
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return nil
	}
	n := float64(ix.numDocs)
	out := make(map[int]float64, len(counts))
	for t, c := range counts {
		ix.checkTerm(t)
		if ix.df[t] == 0 {
			continue // term absent from the collection: contributes nothing
		}
		w := (float64(c) / float64(total)) * math.Log(n/float64(ix.df[t]))
		if w != 0 {
			out[t] = w
		}
	}
	return out
}

// sortedTerms returns the keys of a term-count map in ascending order.
func sortedTerms[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for t := range m {
		keys = append(keys, t)
	}
	sort.Ints(keys)
	return keys
}

// Query ranks all matching documents by cosine similarity (Equation 4)
// against the query counts and returns the top results in descending
// score order (ties broken by document id for determinism). topN ≤ 0
// returns every document with a positive score.
func (ix *Index) Query(counts map[int]int, topN int) []Scored {
	return ix.QueryMin(counts, topN, math.Inf(-1))
}

// QueryMin is Query with a score threshold applied before the topN
// truncation: documents scoring below minScore (strictly — a document at
// exactly minScore is kept) never enter the bounded selection heap, so
// the result is the topN best documents at or above the threshold.
// Applying a threshold after truncating would instead undershoot topN
// whenever the selection and filter disagree; threading it into the heap
// keeps the two composable by construction and skips the heap work for
// below-threshold documents.
func (ix *Index) QueryMin(counts map[int]int, topN int, minScore float64) []Scored {
	return ix.rank(ix.QueryWeights(counts), topN, minScore)
}

// QueryFloat is Query over fractional term counts (soft concept mapping).
func (ix *Index) QueryFloat(counts map[int]float64, topN int) []Scored {
	// Sorted iteration keeps the floating-point total — and with it the
	// query weights — bit-identical across runs.
	var total float64
	for _, t := range sortedTerms(counts) {
		total += counts[t]
	}
	if total == 0 {
		return nil
	}
	n := float64(ix.numDocs)
	qw := make(map[int]float64, len(counts))
	for t, c := range counts {
		ix.checkTerm(t)
		if c <= 0 || ix.df[t] == 0 {
			continue
		}
		if w := (c / total) * math.Log(n/float64(ix.df[t])); w != 0 {
			qw[t] = w
		}
	}
	return ix.rank(qw, topN, math.Inf(-1))
}

// RankWeights ranks documents against a precomputed tf-idf query vector
// (QueryWeights output) — the exported scoring seam the two-stage
// retrieval pipeline builds on. Semantics match QueryMin exactly: the
// topN best documents at or above minScore, ordered (score desc,
// doc asc); topN ≤ 0 returns every match. Pass math.Inf(-1) as minScore
// for an unthresholded candidate scan.
func (ix *Index) RankWeights(qw map[int]float64, topN int, minScore float64) []Scored {
	return ix.rank(qw, topN, minScore)
}

// QueryNorm returns the Euclidean norm of a tf-idf query vector,
// accumulated over sorted terms — bit-identical to the norm the ranking
// paths divide by.
func (ix *Index) QueryNorm(qw map[int]float64) float64 {
	var qnorm2 float64
	for _, t := range sortedTerms(qw) {
		qnorm2 += qw[t] * qw[t]
	}
	return math.Sqrt(qnorm2)
}

// SortScoredDesc orders results best-first: descending score, ties
// broken by ascending document id — the comparator every ranking path
// shares.
func SortScoredDesc(out []Scored) { sortScoredDesc(out) }

func (ix *Index) rank(qw map[int]float64, topN int, minScore float64) []Scored {
	if len(qw) == 0 {
		return nil
	}
	terms := sortedTerms(qw)
	var qnorm2 float64
	for _, t := range terms {
		qnorm2 += qw[t] * qw[t]
	}
	qnorm := math.Sqrt(qnorm2)

	dots := make(map[int]float64)
	for _, t := range terms {
		w := qw[t]
		for _, p := range ix.postings[t] {
			dots[p.doc] += w * p.weight
		}
	}
	if topN > 0 && topN < len(dots) {
		return ix.topK(dots, qnorm, topN, minScore)
	}
	out := make([]Scored, 0, len(dots))
	for d, dot := range dots {
		if ix.norms[d] == 0 {
			continue
		}
		score := dot / (qnorm * ix.norms[d])
		if score < minScore {
			continue
		}
		//lint:ignore maporder sortScoredDesc below imposes the final order (score desc, doc asc)
		out = append(out, Scored{Doc: d, Score: score})
	}
	sortScoredDesc(out)
	if topN > 0 && len(out) > topN {
		out = out[:topN]
	}
	return out
}

// sortScoredDesc orders results best-first: descending score, ties
// broken by ascending document id for determinism.
func sortScoredDesc(out []Scored) {
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		return out[a].Doc < out[b].Doc
	})
}

// topK selects the k best results at or above minScore with a bounded
// heap instead of sorting every scored document: O(D log k) for D
// matches, which is the Limit > 0 serving path on large collections.
// Eviction order is lower score, ties by higher doc id — a strict total
// order, so the selected set is exactly the first k of the full
// descending sort regardless of map iteration order. The threshold is
// applied before a document enters the heap, so the k slots are spent
// only on documents a MinScore filter would keep.
func (ix *Index) topK(dots map[int]float64, qnorm float64, k int, minScore float64) []Scored {
	h := topk.New(k, func(a, b Scored) bool {
		if a.Score != b.Score {
			return a.Score < b.Score
		}
		return a.Doc > b.Doc
	})
	for d, dot := range dots {
		if ix.norms[d] == 0 {
			continue
		}
		score := dot / (qnorm * ix.norms[d])
		if score < minScore {
			continue
		}
		h.Offer(Scored{Doc: d, Score: score})
	}
	out := h.Items()
	sortScoredDesc(out)
	return out
}

// MapToConcepts rewrites tag counts into concept counts using a hard
// tag→concept assignment (Section V's concept distillation followed by
// the tag-to-concept mapping of Figure 1). Tags with no concept
// (assign[t] < 0) are dropped.
func MapToConcepts(tagCounts map[int]int, assign []int) map[int]int {
	out := make(map[int]int, len(tagCounts))
	for t, c := range tagCounts {
		if t < 0 || t >= len(assign) {
			continue
		}
		k := assign[t]
		if k < 0 {
			continue
		}
		out[k] += c
	}
	return out
}

// MapToConceptsSoft rewrites tag counts into fractional concept counts
// using weighted tag→concept memberships — the soft-clustering extension
// the paper sketches in footnote 5 for the polysemy problem. Each tag
// occurrence spreads its mass across the tag's concepts.
func MapToConceptsSoft(tagCounts map[int]int, weights []map[int]float64) map[int]float64 {
	// A concept cell accumulates mass from several tags, so the float
	// additions must run in a fixed order for the fractional counts to
	// be bit-identical across runs: sorted tags, sorted concepts.
	out := make(map[int]float64, len(tagCounts))
	for _, t := range sortedTerms(tagCounts) {
		if t < 0 || t >= len(weights) {
			continue
		}
		c := tagCounts[t]
		for _, concept := range sortedTerms(weights[t]) {
			out[concept] += float64(c) * weights[t][concept]
		}
	}
	return out
}
