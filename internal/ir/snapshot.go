package ir

import "fmt"

// Posting is one exported (document, weight) pair of an index posting
// list, used by the model codec.
type Posting struct {
	Doc    int
	Weight float64
}

// IndexSnapshot is the complete serializable state of an Index. It
// exists so that a saved model can be served by a process that never saw
// the raw corpus: internal/codec encodes snapshots, not live indexes.
type IndexSnapshot struct {
	NumTerms int
	NumDocs  int
	DF       []int
	Postings [][]Posting
	Norms    []float64
}

// Snapshot copies the index state into its serializable form.
func (ix *Index) Snapshot() *IndexSnapshot {
	s := &IndexSnapshot{
		NumTerms: ix.numTerms,
		NumDocs:  ix.numDocs,
		DF:       append([]int(nil), ix.df...),
		Postings: make([][]Posting, len(ix.postings)),
		Norms:    append([]float64(nil), ix.norms...),
	}
	for t, ps := range ix.postings {
		if len(ps) == 0 {
			continue
		}
		out := make([]Posting, len(ps))
		for i, p := range ps {
			out[i] = Posting{Doc: p.doc, Weight: p.weight}
		}
		s.Postings[t] = out
	}
	return s
}

// FromSnapshot reconstructs an Index from its serialized state,
// validating the shape invariants so a corrupt model file fails loudly
// instead of panicking later inside a query.
func FromSnapshot(s *IndexSnapshot) (*Index, error) {
	if s.NumTerms < 0 || s.NumDocs < 0 {
		return nil, fmt.Errorf("ir: snapshot with negative dimensions %d×%d", s.NumTerms, s.NumDocs)
	}
	if len(s.DF) != s.NumTerms || len(s.Postings) != s.NumTerms {
		return nil, fmt.Errorf("ir: snapshot term arrays (%d df, %d postings) do not match %d terms",
			len(s.DF), len(s.Postings), s.NumTerms)
	}
	if len(s.Norms) != s.NumDocs {
		return nil, fmt.Errorf("ir: snapshot has %d norms for %d docs", len(s.Norms), s.NumDocs)
	}
	ix := &Index{
		numTerms: s.NumTerms,
		numDocs:  s.NumDocs,
		df:       append([]int(nil), s.DF...),
		postings: make([][]posting, s.NumTerms),
		norms:    append([]float64(nil), s.Norms...),
	}
	for t, ps := range s.Postings {
		if len(ps) == 0 {
			continue
		}
		out := make([]posting, len(ps))
		for i, p := range ps {
			if p.Doc < 0 || p.Doc >= s.NumDocs {
				return nil, fmt.Errorf("ir: snapshot posting doc %d out of range [0,%d)", p.Doc, s.NumDocs)
			}
			out[i] = posting{doc: p.Doc, weight: p.Weight}
		}
		ix.postings[t] = out
	}
	return ix, nil
}
