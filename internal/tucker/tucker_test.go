package tucker

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mat"
	"repro/internal/tensor"
)

// paperTensor builds the 3×3×3 tensor of Figure 2(b).
func paperTensor() *tensor.Sparse3 {
	f := tensor.NewSparse3(3, 3, 3)
	for _, r := range [][3]int{
		{0, 0, 0}, {0, 0, 1}, {1, 0, 1}, {2, 0, 1}, {0, 1, 0}, {1, 2, 2}, {2, 2, 2},
	} {
		f.Append(r[0], r[1], r[2], 1)
	}
	f.Build()
	return f
}

func randSparse(rng *rand.Rand, i1, i2, i3, nnz int) *tensor.Sparse3 {
	f := tensor.NewSparse3(i1, i2, i3)
	for range nnz {
		f.Append(rng.Intn(i1), rng.Intn(i2), rng.Intn(i3), rng.NormFloat64())
	}
	f.Build()
	return f
}

func TestFromRatios(t *testing.T) {
	j1, j2, j3 := FromRatios(3897, 3326, 2849, 50, 50, 50)
	// The paper quotes 78×67×57 for Last.fm at c=50.
	if j1 != 78 || j2 != 67 || j3 != 57 {
		t.Fatalf("FromRatios = (%d,%d,%d), want (78,67,57)", j1, j2, j3)
	}
	// Ratios can never drop a dimension to zero.
	j1, j2, j3 = FromRatios(10, 10, 10, 100, 100, 100)
	if j1 != 1 || j2 != 1 || j3 != 1 {
		t.Fatalf("tiny dims: got (%d,%d,%d), want (1,1,1)", j1, j2, j3)
	}
}

func TestFullRankExactReconstruction(t *testing.T) {
	// With no truncation the decomposition must reproduce F exactly.
	f := paperTensor()
	d := Decompose(f, Options{J1: 3, J2: 3, J3: 3, Seed: 7})
	fh := d.Reconstruct()
	if !tensor.Equal(f.Dense(), fh, 1e-8) {
		t.Fatal("full-rank Tucker did not reconstruct F")
	}
	if d.Fit < 1-1e-6 {
		t.Fatalf("full-rank fit = %v, want ~1", d.Fit)
	}
}

func TestFactorsOrthonormal(t *testing.T) {
	f := paperTensor()
	d := Decompose(f, Options{J1: 3, J2: 3, J3: 2, Seed: 1})
	for i, y := range []*mat.Matrix{d.Y1, d.Y2, d.Y3} {
		if !mat.IsOrthonormal(y, 1e-8) {
			t.Fatalf("Y(%d) not orthonormal", i+1)
		}
	}
}

func TestPaperRunningExample(t *testing.T) {
	// Section IV-D: the running example reports D̂12 = √1.92,
	// D̂13 = √5.94, D̂23 = √2.36. Reconstructing the paper's printed F̂
	// slices shows its rank-2 truncation was applied to the *tag* mode
	// (F̂:,t2,: is proportional to F̂:,t1,:, i.e. mode-2 rank 2), so in our
	// (user, tag, resource) mode order the example is J = (3, 2, 3).
	f := paperTensor()
	d := Decompose(f, Options{J1: 3, J2: 2, J3: 3, Seed: 3})
	fh := d.Reconstruct()
	dist := func(a, b int) float64 {
		return mat.Sub(fh.SliceMode2(a), fh.SliceMode2(b)).FrobNorm()
	}
	d12, d13, d23 := dist(0, 1), dist(0, 2), dist(1, 2)
	if !(d12 < d23 && d23 < d13) {
		t.Fatalf("purified distance ordering wrong: D12=%v D23=%v D13=%v", d12, d13, d23)
	}
	// Match the paper's numbers: √1.92≈1.386, √5.94≈2.437, √2.36≈1.536.
	// The ALS optimum may differ in low digits from the paper's rounded
	// report; allow a few percent.
	within := func(got, want float64) bool { return math.Abs(got-want)/want < 0.05 }
	if !within(d12, math.Sqrt(1.92)) {
		t.Errorf("D̂12 = %v, paper says √1.92 = %v", d12, math.Sqrt(1.92))
	}
	if !within(d13, math.Sqrt(5.94)) {
		t.Errorf("D̂13 = %v, paper says √5.94 = %v", d13, math.Sqrt(5.94))
	}
	if !within(d23, math.Sqrt(2.36)) {
		t.Errorf("D̂23 = %v, paper says √2.36 = %v", d23, math.Sqrt(2.36))
	}
}

func TestCoreMatchesProjection(t *testing.T) {
	// Core returned must equal F ×₁Y1ᵀ ×₂Y2ᵀ ×₃Y3ᵀ.
	rng := rand.New(rand.NewSource(11))
	f := randSparse(rng, 6, 7, 5, 60)
	d := Decompose(f, Options{J1: 3, J2: 3, J3: 3, Seed: 5})
	want := f.Dense().
		ModeProduct(1, d.Y1.T()).
		ModeProduct(2, d.Y2.T()).
		ModeProduct(3, d.Y3.T())
	if !tensor.Equal(d.Core, want, 1e-9) {
		t.Fatal("core disagrees with explicit projection")
	}
}

func TestFitMonotoneInRank(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	f := randSparse(rng, 8, 8, 8, 120)
	var prev float64
	for _, j := range []int{1, 2, 4, 8} {
		d := Decompose(f, Options{J1: j, J2: j, J3: j, Seed: 2})
		if d.Fit < prev-1e-6 {
			t.Fatalf("fit decreased when rank grew: J=%d fit=%v prev=%v", j, d.Fit, prev)
		}
		prev = d.Fit
	}
	if prev < 1-1e-6 {
		t.Fatalf("full-rank fit = %v, want ~1", prev)
	}
}

func TestLambdaMatchesCoreGram(t *testing.T) {
	// Theorem 2's premise: at convergence S₍₂₎S₍₂₎ᵀ ≈ diag(Λ₂²).
	rng := rand.New(rand.NewSource(17))
	f := randSparse(rng, 7, 6, 8, 80)
	d := Decompose(f, Options{J1: 4, J2: 4, J3: 4, Seed: 4, MaxSweeps: 60, Tol: 1e-13})
	s2 := d.Core.Unfold(2)
	g := mat.MulT(s2, s2)
	scale := d.Lambda[1][0] * d.Lambda[1][0]
	for i := range g.Rows() {
		for j := range g.Cols() {
			want := 0.0
			if i == j {
				want = d.Lambda[1][i] * d.Lambda[1][i]
			}
			if math.Abs(g.At(i, j)-want) > 1e-5*scale {
				t.Fatalf("S₍₂₎S₍₂₎ᵀ[%d,%d] = %v, want %v", i, j, g.At(i, j), want)
			}
		}
	}
}

func TestApproximationBeatsTruncatedNothing(t *testing.T) {
	// The rank-(2,2,2) HOOI approximation error must not exceed the
	// trivial approximation by the zero tensor.
	rng := rand.New(rand.NewSource(19))
	f := randSparse(rng, 6, 6, 6, 50)
	d := Decompose(f, Options{J1: 2, J2: 2, J3: 2, Seed: 6})
	res := tensor.Sub(f.Dense(), d.Reconstruct()).FrobNorm()
	if res >= f.FrobNorm() {
		t.Fatalf("approximation residual %v not better than zero tensor %v", res, f.FrobNorm())
	}
}

func TestRandomInitConvergesToo(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	f := randSparse(rng, 6, 6, 6, 60)
	a := Decompose(f, Options{J1: 3, J2: 3, J3: 3, Seed: 1})
	b := Decompose(f, Options{J1: 3, J2: 3, J3: 3, Seed: 1, SkipHOSVDInit: true, MaxSweeps: 40})
	// Fits should be comparable (same local optimum in practice).
	if math.Abs(a.Fit-b.Fit) > 0.05 {
		t.Fatalf("HOSVD init fit %v vs random init fit %v differ too much", a.Fit, b.Fit)
	}
}

func TestDecomposeDeterministic(t *testing.T) {
	f := paperTensor()
	a := Decompose(f, Options{J1: 3, J2: 3, J3: 2, Seed: 9})
	b := Decompose(f, Options{J1: 3, J2: 3, J3: 2, Seed: 9})
	if !tensor.Equal(a.Core, b.Core, 0) {
		t.Fatal("same seed produced different cores")
	}
	if !mat.Equal(a.Y2, b.Y2, 0) {
		t.Fatal("same seed produced different factors")
	}
}

func TestClampDims(t *testing.T) {
	// Requesting J larger than the dimension clamps; rank bounds from the
	// other modes also apply (J1 ≤ J2·J3).
	f := paperTensor()
	d := Decompose(f, Options{J1: 10, J2: 1, J3: 1, Seed: 1})
	j1, j2, j3 := d.CoreDims()
	if j1 != 1 || j2 != 1 || j3 != 1 {
		t.Fatalf("CoreDims = (%d,%d,%d), want (1,1,1)", j1, j2, j3)
	}
}

func TestInvalidOptionsPanic(t *testing.T) {
	f := paperTensor()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for J=0")
		}
	}()
	Decompose(f, Options{J1: 0, J2: 1, J3: 1})
}
