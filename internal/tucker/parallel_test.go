package tucker

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/mat"
	"repro/internal/tensor"
)

// mediumTensor is large enough that every parallel region of the sweep —
// unfolding products, Gram products, Cholesky-QR, block applies — crosses
// its dispatch threshold and actually runs on the worker pool, so these
// tests exercise the concurrent paths under the race detector.
func mediumTensor(seed int64) *tensor.Sparse3 {
	rng := rand.New(rand.NewSource(seed))
	f := tensor.NewSparse3(40, 50, 60)
	for range 6000 {
		f.Append(rng.Intn(40), rng.Intn(50), rng.Intn(60), rng.NormFloat64())
	}
	f.Build()
	return f
}

func requireBitIdentical(t *testing.T, a, b *Decomposition, label string) {
	t.Helper()
	mats := func(d *Decomposition) []*mat.Matrix { return []*mat.Matrix{d.Y1, d.Y2, d.Y3} }
	for i := range mats(a) {
		ma, mb := mats(a)[i], mats(b)[i]
		for j := range ma.Data() {
			if ma.Data()[j] != mb.Data()[j] {
				t.Fatalf("%s: Y%d diverges at flat index %d: %v vs %v", label, i+1, j, ma.Data()[j], mb.Data()[j])
			}
		}
	}
	for m := range a.Lambda {
		for i := range a.Lambda[m] {
			if a.Lambda[m][i] != b.Lambda[m][i] {
				t.Fatalf("%s: Lambda[%d][%d] diverges", label, m, i)
			}
		}
	}
	for i := range a.Core.Data() {
		if a.Core.Data()[i] != b.Core.Data()[i] {
			t.Fatalf("%s: core diverges at %d", label, i)
		}
	}
	if a.Fit != b.Fit || a.Sweeps != b.Sweeps {
		t.Fatalf("%s: fit/sweeps diverge: %v/%d vs %v/%d", label, a.Fit, a.Sweeps, b.Fit, b.Sweeps)
	}
}

// TestWorkersBitwiseParity pins the parallel sweep's central invariant:
// the worker count partitions work but never reorders a floating-point
// accumulation, so workers=1 and workers=GOMAXPROCS (and an
// oversubscribed pool) produce bit-identical factors from the same seed.
func TestWorkersBitwiseParity(t *testing.T) {
	f := mediumTensor(31)
	base := Options{J1: 8, J2: 10, J3: 12, MaxSweeps: 3, Seed: 77}

	serial := base
	serial.Workers = 1
	want := Decompose(f, serial)

	for _, workers := range []int{runtime.GOMAXPROCS(0), 4, 0} {
		opts := base
		opts.Workers = workers
		got := Decompose(f, opts)
		requireBitIdentical(t, want, got, "exact path")
	}
}

// TestWorkersBitwiseParitySketched extends the invariant to the
// randomized path: the sketch is seeded, and its products partition the
// same way, so the worker count must not change a single bit there
// either.
func TestWorkersBitwiseParitySketched(t *testing.T) {
	f := mediumTensor(37)
	base := Options{
		J1: 8, J2: 10, J3: 12, MaxSweeps: 3, Seed: 99,
		Sketch: SketchOptions{Enabled: true, MinColumns: 1},
	}

	serial := base
	serial.Workers = 1
	want := Decompose(f, serial)

	parallel := base
	parallel.Workers = 4
	requireBitIdentical(t, want, Decompose(f, parallel), "sketched path")
}

// TestSketchedFitNearExact checks the accuracy contract of the
// randomized path: on the paper's running example (forced through the
// sketch with MinColumns=1) the captured fit must land within a tight
// tolerance of the exact ALS optimum.
func TestSketchedFitNearExact(t *testing.T) {
	f := paperTensor()
	exact := Decompose(f, Options{J1: 3, J2: 2, J3: 3, Seed: 3})
	sketched := Decompose(f, Options{
		J1: 3, J2: 2, J3: 3, Seed: 3,
		Sketch: SketchOptions{Enabled: true, MinColumns: 1},
	})
	if math.Abs(sketched.Fit-exact.Fit) > 0.02 {
		t.Fatalf("sketched fit %v strays from exact fit %v", sketched.Fit, exact.Fit)
	}
	for i, y := range []*mat.Matrix{sketched.Y1, sketched.Y2, sketched.Y3} {
		if !mat.IsOrthonormal(y, 1e-8) {
			t.Fatalf("sketched Y(%d) not orthonormal", i+1)
		}
	}
}

// TestSketchedFitNearExactMediumScale repeats the fit check on a tensor
// large enough for the sketch to engage through its default MinColumns
// gate, at a truncation where the sketch genuinely approximates.
func TestSketchedFitNearExactMediumScale(t *testing.T) {
	f := mediumTensor(41)
	exact := Decompose(f, Options{J1: 8, J2: 10, J3: 12, MaxSweeps: 4, Seed: 7})
	sketched := Decompose(f, Options{
		J1: 8, J2: 10, J3: 12, MaxSweeps: 4, Seed: 7,
		Sketch: SketchOptions{Enabled: true, MinColumns: 64},
	})
	if exact.Fit <= 0 {
		t.Fatalf("exact fit %v not positive; test tensor degenerate", exact.Fit)
	}
	if rel := math.Abs(sketched.Fit-exact.Fit) / exact.Fit; rel > 0.10 {
		t.Fatalf("sketched fit %v vs exact %v: relative gap %.3f > 0.10", sketched.Fit, exact.Fit, rel)
	}
}

// TestSketchedDeterministic pins that the randomized path is random in
// name only: the sketch derives from Options.Seed.
func TestSketchedDeterministic(t *testing.T) {
	f := mediumTensor(43)
	opts := Options{
		J1: 6, J2: 6, J3: 6, MaxSweeps: 2, Seed: 5,
		Sketch: SketchOptions{Enabled: true, MinColumns: 1},
	}
	requireBitIdentical(t, Decompose(f, opts), Decompose(f, opts), "sketched determinism")
}

// cancelAfterN is a context whose Err starts failing after n polls; it
// lets the tests cancel deterministically between two specific mode
// updates of a sweep.
type cancelAfterN struct {
	context.Context
	calls, n int
}

func (c *cancelAfterN) Err() error {
	c.calls++
	if c.calls > c.n {
		return context.Canceled
	}
	return nil
}

// TestCancelMidParallelSweep cancels between the mode-1 and mode-2
// factor updates of the first parallel sweep: DecomposeContext must
// return context.Canceled and no decomposition, even with the worker
// pool engaged.
func TestCancelMidParallelSweep(t *testing.T) {
	f := mediumTensor(47)
	// Err polls: 2 during HOSVD init, then one per mode update. n=3
	// allows init plus the mode-1 update, so cancellation lands strictly
	// inside the first sweep.
	ctx := &cancelAfterN{Context: context.Background(), n: 3}
	d, err := DecomposeContext(ctx, f, Options{J1: 8, J2: 10, J3: 12, Workers: 4, Seed: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d != nil {
		t.Fatal("cancelled decomposition must be nil")
	}
	if ctx.calls < 4 {
		t.Fatalf("cancellation fired before the sweep started (%d polls)", ctx.calls)
	}
}

// TestDecomposeContextReturnsValidationErrors pins the error half of the
// contract: invalid options come back as errors wrapping
// ErrInvalidOptions — never as panics — from DecomposeContext.
func TestDecomposeContextReturnsValidationErrors(t *testing.T) {
	f := paperTensor()
	cases := []Options{
		{J1: 0, J2: 1, J3: 1},
		{J1: 1, J2: -2, J3: 1},
		{J1: 1, J2: 1, J3: 1, MaxSweeps: -1},
		{J1: 1, J2: 1, J3: 1, Sketch: SketchOptions{Enabled: true, Oversample: -1}},
		{J1: 1, J2: 1, J3: 1, Sketch: SketchOptions{Enabled: true, MinColumns: -5}},
	}
	for _, opts := range cases {
		d, err := DecomposeContext(context.Background(), f, opts)
		if !errors.Is(err, ErrInvalidOptions) {
			t.Fatalf("opts %+v: err = %v, want ErrInvalidOptions", opts, err)
		}
		if d != nil {
			t.Fatalf("opts %+v: got a decomposition alongside the error", opts)
		}
	}
}

// TestDecomposePanicsWithValidationError pins the panic half: Decompose
// surfaces the same wrapped validation error as a panic, since a
// background context leaves invalid options as its only failure mode.
func TestDecomposePanicsWithValidationError(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic for J1=0")
		}
		err, ok := r.(error)
		if !ok || !errors.Is(err, ErrInvalidOptions) {
			t.Fatalf("panic value %v does not wrap ErrInvalidOptions", r)
		}
	}()
	Decompose(paperTensor(), Options{J1: 0, J2: 1, J3: 1})
}
