package tucker

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/mat"
	"repro/internal/tensor"
)

// perturb returns a copy of f with a few extra entries appended — the
// tensor-level shape of a small assignment delta.
func perturb(f *tensor.Sparse3, extra int, seed int64) *tensor.Sparse3 {
	i1, i2, i3 := f.Dims()
	out := tensor.NewSparse3(i1, i2, i3)
	for _, e := range f.Entries() {
		out.Append(e.I, e.J, e.K, e.V)
	}
	rng := rand.New(rand.NewSource(seed))
	for range extra {
		out.Append(rng.Intn(i1), rng.Intn(i2), rng.Intn(i3), 1)
	}
	out.Build()
	return out
}

// TestWarmStartConvergesInFewerSweeps is the headline property: warm
// starting from the converged factors of a nearly identical tensor must
// trip the fit-improvement stopping rule in fewer sweeps than a cold
// start, while reaching an equally good fit.
func TestWarmStartConvergesInFewerSweeps(t *testing.T) {
	f := mediumTensor(3)
	opts := Options{J1: 8, J2: 10, J3: 9, Seed: 1, MaxSweeps: 60, Tol: 1e-6}
	prev := Decompose(f, opts)

	g := perturb(f, f.NNZ()/100+1, 42)
	cold := Decompose(g, opts)
	warmOpts := opts
	warmOpts.WarmStart = &WarmStart{Y2: prev.Y2, Y3: prev.Y3}
	warm := Decompose(g, warmOpts)

	if cold.Sweeps <= 2 {
		t.Fatalf("cold start converged in %d sweeps; fixture too easy to show a warm-start win", cold.Sweeps)
	}
	if warm.Sweeps >= cold.Sweeps {
		t.Fatalf("warm start took %d sweeps, cold %d — no acceleration", warm.Sweeps, cold.Sweeps)
	}
	if warm.Fit < cold.Fit-1e-6 {
		t.Fatalf("warm fit %v below cold fit %v — warm start must accelerate, not approximate", warm.Fit, cold.Fit)
	}
}

// TestWarmStartNilKeepsColdPathBitIdentical pins the contract the golden
// factor hash in internal/core relies on: a nil WarmStart is exactly the
// pre-warm-start code path.
func TestWarmStartNilKeepsColdPathBitIdentical(t *testing.T) {
	f := paperTensor()
	opts := Options{J1: 3, J2: 2, J3: 3, Seed: 1}
	a := Decompose(f, opts)
	opts.WarmStart = nil // explicit: the zero value is the cold path
	b := Decompose(f, opts)
	requireBitIdentical(t, a, b, "nil WarmStart")
}

// TestWarmStartAdaptsShapes proves a warm start survives vocabulary
// growth and shrinkage: factors from a smaller (and larger) tensor are
// padded/truncated and re-orthonormalized rather than rejected.
func TestWarmStartAdaptsShapes(t *testing.T) {
	small := mediumTensor(3)
	prev := Decompose(small, Options{J1: 6, J2: 7, J3: 6, Seed: 1})

	// Grown modes: 5 new rows in each of modes 2 and 3, one more column.
	i1, i2, i3 := small.Dims()
	grown := tensor.NewSparse3(i1, i2+5, i3+5)
	for _, e := range small.Entries() {
		grown.Append(e.I, e.J, e.K, e.V)
	}
	for n := range 12 {
		grown.Append(n%i1, i2+n%5, i3+(n+2)%5, 1)
	}
	grown.Build()
	d, err := DecomposeContext(t.Context(), grown, Options{
		J1: 6, J2: 8, J3: 7, Seed: 1,
		WarmStart: &WarmStart{Y2: prev.Y2, Y3: prev.Y3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r, c := d.Y2.Dims(); r != i2+5 || c != 7 {
		// J2=8 exceeds neither bound here; clampDims may shrink, so just
		// check rows and that columns are positive and orthonormal below.
		if r != i2+5 || c < 1 {
			t.Fatalf("Y2 dims %d×%d", r, c)
		}
	}
	requireOrthonormal(t, d.Y2, "Y2")
	requireOrthonormal(t, d.Y3, "Y3")

	// Shrunk ranks: warm start with wider factors than the target rank.
	d2 := Decompose(small, Options{J1: 4, J2: 4, J3: 4, Seed: 1,
		WarmStart: &WarmStart{Y2: prev.Y2, Y3: prev.Y3}})
	requireOrthonormal(t, d2.Y2, "shrunk Y2")
	if d2.Fit <= 0 {
		t.Fatalf("shrunk warm-start fit %v", d2.Fit)
	}
}

func requireOrthonormal(t *testing.T, m *mat.Matrix, label string) {
	t.Helper()
	g := mat.TMul(m, m)
	n := g.Rows()
	if !mat.Equal(g, mat.Identity(n), 1e-8) {
		t.Fatalf("%s: columns not orthonormal: YᵀY=%v", label, g)
	}
}

// TestWarmStartValidation pins the options contract: a WarmStart with a
// missing factor is an ErrInvalidOptions, not a crash mid-sweep.
func TestWarmStartValidation(t *testing.T) {
	f := paperTensor()
	for _, ws := range []*WarmStart{
		{Y2: mat.New(3, 2)},
		{Y3: mat.New(3, 3)},
		{},
	} {
		_, err := DecomposeContext(t.Context(), f, Options{J1: 3, J2: 2, J3: 3, WarmStart: ws})
		if !errors.Is(err, ErrInvalidOptions) {
			t.Fatalf("WarmStart %+v: err = %v, want ErrInvalidOptions", ws, err)
		}
	}
}
