package tucker

import (
	"context"
	"errors"
	"testing"

	"repro/internal/tensor"
)

func smallTensor() *tensor.Sparse3 {
	f := tensor.NewSparse3(6, 6, 6)
	for i := range 6 {
		for j := range 6 {
			if (i+j)%2 == 0 {
				f.Append(i, j, (i*j)%6, 1)
			}
		}
	}
	f.Build()
	return f
}

func TestDecomposeContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d, err := DecomposeContext(ctx, smallTensor(), Options{J1: 2, J2: 2, J3: 2, Seed: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d != nil {
		t.Fatal("cancelled decomposition must be nil")
	}
}

func TestDecomposeContextBackgroundMatchesDecompose(t *testing.T) {
	f := smallTensor()
	opts := Options{J1: 2, J2: 2, J3: 2, Seed: 1}
	a := Decompose(f, opts)
	b, err := DecomposeContext(context.Background(), f, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fit != b.Fit || a.Sweeps != b.Sweeps {
		t.Fatalf("context path diverged: fit %v vs %v, sweeps %d vs %d", a.Fit, b.Fit, a.Sweeps, b.Sweeps)
	}
	for i := range a.Y2.Data() {
		if a.Y2.Data()[i] != b.Y2.Data()[i] {
			t.Fatal("Y2 diverged between Decompose and DecomposeContext")
		}
	}
}
