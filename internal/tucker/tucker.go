// Package tucker implements the truncated Tucker decomposition of sparse
// third-order tensors by higher-order orthogonal iteration (HOOI), the
// alternating least squares scheme of De Lathauwer, De Moor and
// Vandewalle that the paper's Algorithm 1 invokes as ALS.
//
// Decompose returns the core tensor S, the three factor matrices Y⁽ⁿ⁾,
// and the per-mode singular values Λₙ of the final sweep. Λ₂ is the ALS
// by-product that Theorem 2 uses to turn pairwise tag distances into a
// diagonal quadratic form.
//
// The sweep is parallel: each mode-n unfolding product, Gram product and
// QR step is block-partitioned across a bounded worker pool
// (Options.Workers), and every worker count produces bit-identical
// factors — parallel regions assign disjoint outputs without changing
// per-element summation order. Options.Sketch additionally switches the
// leading-left SVDs of large unfoldings to a seeded randomized range
// finder; the exact path remains the deterministic default.
package tucker

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/mat"
	"repro/internal/tensor"
)

// ErrInvalidOptions tags option-validation failures. DecomposeContext
// returns errors wrapping it; Decompose panics with them.
var ErrInvalidOptions = errors.New("tucker: invalid options")

// Unfolder computes projected mode-n unfoldings on behalf of the ALS
// sweep — the hook a distributed build uses to fan the dominant cost of
// each sweep out to remote workers. An implementation must return
// exactly what tensor.ProjectedUnfoldSharded(f, mode, ya, yb, workers,
// shards) returns, bit for bit: the sweep's factors (and the golden-hash
// parity contract) depend on it. An error aborts the decomposition.
type Unfolder interface {
	Unfold(ctx context.Context, f *tensor.Sparse3, mode int, ya, yb *mat.Matrix, workers, shards int) (*mat.Matrix, error)
}

// SketchOptions configures the randomized range-finder path of the ALS
// sweep. When enabled, the leading-left SVD of each sufficiently wide
// projected unfolding is replaced by a sketched one (Halko–Martinsson–
// Tropp): O(rows·cols·(Jₙ+Oversample)) per pass instead of the
// O(rows²·cols) Gram products of the exact path. The sketch is seeded
// from Options.Seed, so sketched decompositions are deterministic too —
// they just converge to a slightly different (near-optimal) fit.
type SketchOptions struct {
	// Enabled turns the sketched path on. The zero value keeps the exact
	// seeded-deterministic SVDs everywhere.
	Enabled bool
	// Oversample is the number of sketch columns beyond Jₙ. Zero means 8.
	Oversample int
	// PowerIters is the number of power-iteration refinement rounds.
	// Zero means 2; negative disables refinement.
	PowerIters int
	// MinColumns gates the sketch by unfolding width: modes whose
	// projected unfolding has fewer columns keep the exact SVD (small
	// dense problems are fast and more accurate). Zero means 512.
	MinColumns int
}

func (s SketchOptions) minColumns() int {
	if s.MinColumns == 0 {
		return 512
	}
	return s.MinColumns
}

// WarmStart carries mode-2 and mode-3 factor matrices from a previous
// decomposition, used as the initial factors of the ALS sweep instead of
// the HOSVD initialization. A good warm start (for example, the factors
// of the same corpus before a small assignment delta) lands the first
// sweep near the fixed point, so the fit-improvement stopping rule
// triggers after fewer sweeps than a cold start — the factors still
// converge to the ALS fixed point of the *current* tensor; the warm
// start is an accelerator, not an approximation.
//
// Rows must be pre-aligned to the current tensor's mode-2/mode-3 index
// spaces by the caller (entities can appear, disappear or move between
// builds). The matrices may have any shape: rows and columns are
// truncated or padded as needed and the result is re-orthonormalized
// before the first sweep.
type WarmStart struct {
	// Y2 seeds the mode-2 (tag) factor, Y3 the mode-3 (resource) factor.
	// Mode 1 needs no seed: the sweep computes it first, from Y2 and Y3.
	Y2, Y3 *mat.Matrix
}

// Options configures Decompose.
type Options struct {
	// J1, J2, J3 are the target core dimensions. The paper specifies them
	// through reduction ratios cₙ = Iₙ/Jₙ (Definition 2); use FromRatios
	// to derive core dimensions the same way.
	J1, J2, J3 int
	// MaxSweeps bounds the number of full ALS sweeps. Zero means 12.
	MaxSweeps int
	// Tol stops the iteration when the relative fit improves by less than
	// this amount between sweeps. Zero means 1e-7.
	Tol float64
	// Seed makes the decomposition deterministic.
	Seed uint64
	// Workers bounds the worker pool shared by the mode-n unfolding
	// products, the Gram/QR steps inside subspace iteration, and the
	// sketched range finder. Zero means one worker per logical CPU; 1
	// runs the sweep serially. Factors are bit-identical for every
	// worker count.
	Workers int
	// Shards additionally partitions each mode-n unfolding product into
	// contiguous row blocks processed one block at a time — the bounded
	// unit of work of sharded offline builds (tensor.ProjectedUnfoldBlock
	// is the standalone form a multi-machine sweep would distribute).
	// Factors are bit-identical for every shard count. Zero or one means
	// one block; negative is invalid.
	Shards int
	// Sketch switches large-mode leading-left SVDs to the randomized
	// range finder. The zero value keeps the exact path.
	Sketch SketchOptions
	// SkipHOSVDInit starts from random orthonormal factors instead of the
	// HOSVD of the raw unfoldings. Mainly for tests and ablations.
	SkipHOSVDInit bool
	// WarmStart, if non-nil, seeds the sweep with previous factor
	// matrices instead of the HOSVD initialization (see WarmStart). Nil
	// keeps the cold-start path bit-identical to previous releases.
	WarmStart *WarmStart
	// Unfolder, if non-nil, computes the sweep's projected unfoldings in
	// place of tensor.ProjectedUnfoldSharded — the distributed-build hook.
	// Implementations must be bit-identical to the local computation (see
	// Unfolder). Nil keeps everything in-process.
	Unfolder Unfolder
}

// FromRatios returns core dimensions Jₙ = max(1, round(Iₙ/cₙ)) for a
// tensor with dimensions (i1, i2, i3), mirroring the paper's reduction
// ratios (for example c₁=c₂=c₃=50 in the experiments).
func FromRatios(i1, i2, i3 int, c1, c2, c3 float64) (j1, j2, j3 int) {
	r := func(i int, c float64) int {
		if c < 1 {
			panic(fmt.Sprintf("tucker: reduction ratio %v < 1", c))
		}
		j := int(math.Round(float64(i) / c))
		if j < 1 {
			j = 1
		}
		if j > i {
			j = i
		}
		return j
	}
	return r(i1, c1), r(i2, c2), r(i3, c3)
}

// Decomposition is the result of a truncated Tucker decomposition.
type Decomposition struct {
	// Core is the J1×J2×J3 core tensor S (Equation 16).
	Core *tensor.Dense3
	// Y1, Y2, Y3 are the factor matrices Y⁽ⁿ⁾ ∈ R^{Iₙ×Jₙ} with
	// orthonormal columns.
	Y1, Y2, Y3 *mat.Matrix
	// Lambda holds the leading mode-n singular values from the final ALS
	// sweep; Lambda[1] is the Λ₂ of Theorem 2. Indexed by mode-1 (0,1,2).
	Lambda [3][]float64
	// Fit is 1 − ‖F−F̂‖/‖F‖, the fraction of the tensor norm captured.
	// On the sketched path it is an estimate built from the sketched
	// singular values.
	Fit float64
	// Sweeps is the number of ALS sweeps performed.
	Sweeps int
}

// Decompose computes the truncated Tucker decomposition of f.
//
// Panic/error contract: Decompose is DecomposeContext under a background
// context, which never cancels — so the only way the computation can
// fail is invalid Options, and Decompose panics with that validation
// error (it wraps ErrInvalidOptions) instead of returning it. Callers
// that want errors instead of panics, or cancellation, use
// DecomposeContext.
func Decompose(f *tensor.Sparse3, opts Options) *Decomposition {
	//lint:ignore ctxflow documented compat shim: Decompose IS DecomposeContext under a never-cancelled root context
	d, err := DecomposeContext(context.Background(), f, opts)
	if err != nil {
		// Background contexts are never cancelled, so err can only be an
		// options-validation failure: surface it as the documented panic.
		panic(err)
	}
	return d
}

// validateOptions rejects option values the sweep cannot run with. It is
// the single source of DecomposeContext's non-context errors.
func validateOptions(opts Options) error {
	name := [3]string{"J1", "J2", "J3"}
	for i, j := range [3]int{opts.J1, opts.J2, opts.J3} {
		if j <= 0 {
			return fmt.Errorf("%w: %s must be positive, got %d", ErrInvalidOptions, name[i], j)
		}
	}
	if opts.MaxSweeps < 0 {
		return fmt.Errorf("%w: MaxSweeps must be non-negative, got %d", ErrInvalidOptions, opts.MaxSweeps)
	}
	if opts.Shards < 0 {
		return fmt.Errorf("%w: Shards must be non-negative, got %d", ErrInvalidOptions, opts.Shards)
	}
	if opts.Sketch.Oversample < 0 {
		return fmt.Errorf("%w: Sketch.Oversample must be non-negative, got %d", ErrInvalidOptions, opts.Sketch.Oversample)
	}
	if opts.Sketch.MinColumns < 0 {
		return fmt.Errorf("%w: Sketch.MinColumns must be non-negative, got %d", ErrInvalidOptions, opts.Sketch.MinColumns)
	}
	if opts.WarmStart != nil && (opts.WarmStart.Y2 == nil || opts.WarmStart.Y3 == nil) {
		return fmt.Errorf("%w: WarmStart requires both Y2 and Y3", ErrInvalidOptions)
	}
	return nil
}

// DecomposeContext is Decompose with cooperative cancellation and an
// error return instead of a panic: invalid Options come back wrapping
// ErrInvalidOptions, and the context is checked before every per-mode
// factor update — a long ALS run aborts within one mode update of
// cancellation (parallel workers inside a mode update always run to
// completion; they are bounded by one unfolding product or SVD) and
// returns the context's error.
func DecomposeContext(ctx context.Context, f *tensor.Sparse3, opts Options) (*Decomposition, error) {
	if err := validateOptions(opts); err != nil {
		return nil, err
	}
	i1, i2, i3 := f.Dims()
	j1, j2, j3 := clampDims(opts, i1, i2, i3)
	maxSweeps := opts.MaxSweeps
	if maxSweeps == 0 {
		maxSweeps = 12
	}
	tol := opts.Tol
	if tol == 0 {
		tol = 1e-7
	}

	// Sweep SVDs run with a bounded budget: social-tagging tensors have
	// long flat noise spectra, so the trailing wanted eigenvectors
	// converge slowly — and to machine precision they simply don't need
	// to (each sweep refines the previous one anyway). Small problems
	// bypass iteration entirely via exact dense paths inside LeftSVD.
	sub := mat.SubspaceOptions{Seed: opts.Seed, MaxIter: 45, Tol: 1e-6, Workers: opts.Workers}

	// Initial factors for modes 2 and 3 (mode 1 is computed first in the
	// sweep and needs no initialization). Initialization only has to land
	// in the right neighborhood — the ALS sweeps refine it — so the
	// eigensolver runs with a loose budget here.
	initSub := mat.SubspaceOptions{Seed: opts.Seed, MaxIter: 48, Tol: 1e-4, Workers: opts.Workers}
	var y2, y3 *mat.Matrix
	if opts.WarmStart != nil {
		y2 = adaptFactor(opts.WarmStart.Y2, i2, j2, opts.Seed+1)
		y3 = adaptFactor(opts.WarmStart.Y3, i3, j3, opts.Seed+2)
	} else if opts.SkipHOSVDInit {
		y2 = randomOrthonormal(i2, j2, opts.Seed+1)
		y3 = randomOrthonormal(i3, j3, opts.Seed+2)
	} else {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		y2 = hosvdInit(f, 2, j2, initSub)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		y3 = hosvdInit(f, 3, j3, initSub)
	}

	normF := f.FrobNorm()
	var y1 *mat.Matrix
	var lambda [3][]float64
	prevFit := math.Inf(-1)
	fit := 0.0
	sweeps := 0

	for s := range maxSweeps {
		sweeps = s + 1
		// Mode 1.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		w1, err := unfold(ctx, f, 1, y2, y3, opts)
		if err != nil {
			return nil, err
		}
		svd1 := leadingLeft(w1, j1, sub, opts.Sketch, sketchSeed(opts.Seed, 1, s))
		y1, lambda[0] = svd1.U, svd1.S
		// Mode 2.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		w2, err := unfold(ctx, f, 2, y1, y3, opts)
		if err != nil {
			return nil, err
		}
		svd2 := leadingLeft(w2, j2, sub, opts.Sketch, sketchSeed(opts.Seed, 2, s))
		y2, lambda[1] = svd2.U, svd2.S
		// Mode 3.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		w3, err := unfold(ctx, f, 3, y1, y2, opts)
		if err != nil {
			return nil, err
		}
		svd3 := leadingLeft(w3, j3, sub, opts.Sketch, sketchSeed(opts.Seed, 3, s))
		y3, lambda[2] = svd3.U, svd3.S

		// After the mode-3 update the captured energy is Σ Λ₃², since
		// ‖S‖² = ‖Y⁽³⁾ᵀW₃‖² and Y⁽³⁾ holds the leading left singular
		// vectors of W₃.
		var captured float64
		for _, sv := range lambda[2] {
			captured += sv * sv
		}
		residual := normF*normF - captured
		if residual < 0 {
			residual = 0
		}
		if normF > 0 {
			fit = 1 - math.Sqrt(residual)/normF
		} else {
			fit = 1
		}
		if fit-prevFit <= tol && s > 0 {
			break
		}
		prevFit = fit
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	core := tensor.CoreWorkers(f, y1, y2, y3, opts.Workers)
	return &Decomposition{
		Core: core, Y1: y1, Y2: y2, Y3: y3,
		Lambda: lambda, Fit: fit, Sweeps: sweeps,
	}, nil
}

func clampDims(opts Options, i1, i2, i3 int) (j1, j2, j3 int) {
	c := func(j, max int) int {
		if j > max {
			return max
		}
		return j
	}
	j1 = c(opts.J1, i1)
	j2 = c(opts.J2, i2)
	j3 = c(opts.J3, i3)
	// Each Jₙ is further bounded by the rank bound of the projected
	// unfolding (its column count is the product of the other two core
	// dimensions). Iterate to a fixed point since the bounds interact.
	for {
		n1 := minInt(j1, j2*j3)
		n2 := minInt(j2, j1*j3)
		n3 := minInt(j3, j1*j2)
		if n1 == j1 && n2 == j2 && n3 == j3 {
			return
		}
		j1, j2, j3 = n1, n2, n3
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// unfold computes one projected mode-n unfolding, through the
// distributed hook when one is configured and locally otherwise.
func unfold(ctx context.Context, f *tensor.Sparse3, mode int, ya, yb *mat.Matrix, opts Options) (*mat.Matrix, error) {
	if opts.Unfolder != nil {
		return opts.Unfolder.Unfold(ctx, f, mode, ya, yb, opts.Workers, opts.Shards)
	}
	return tensor.ProjectedUnfoldSharded(f, mode, ya, yb, opts.Workers, opts.Shards), nil
}

// sketchSeed derives a per-(mode, sweep) seed for the randomized range
// finder so successive sketches are independent while the whole sweep
// stays deterministic in the user's seed.
func sketchSeed(seed uint64, mode, sweep int) uint64 {
	x := seed + uint64(mode)*0x9e3779b97f4a7c15 + uint64(sweep)*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hosvdInit returns the leading j left singular vectors of the raw mode-n
// unfolding, computed via subspace iteration on the sparse Gram operator.
func hosvdInit(f *tensor.Sparse3, mode, j int, sub mat.SubspaceOptions) *mat.Matrix {
	op := tensor.UnfoldingGram(f, mode)
	eig := mat.SubspaceIteration(op, j, sub)
	return eig.Vectors
}

// leadingLeft returns the leading j left singular vectors and values of
// w: exactly by default, or through the seeded randomized range finder
// when the sketch is enabled and the unfolding is wide enough.
func leadingLeft(w *mat.Matrix, j int, sub mat.SubspaceOptions, sk SketchOptions, seed uint64) *mat.SVD {
	rows, cols := w.Dims()
	maxK := minInt(rows, cols)
	if j > maxK {
		j = maxK
	}
	if sk.Enabled && cols >= sk.minColumns() {
		skSub := sub
		skSub.Seed = seed
		return mat.SketchedLeftSVD(w, j, mat.SketchSpec{
			Oversample: sk.Oversample, PowerIters: sk.PowerIters,
		}, skSub)
	}
	return mat.LeftSVD(w, j, sub)
}

// adaptFactor reshapes a warm-start factor to the current mode dimension
// and core rank: the overlapping block is copied, entities and columns
// the previous factor does not cover are filled with small deterministic
// pseudo-random noise (so no column is degenerate), and the result is
// re-orthonormalized. The noise scale is far below the unit-norm signal
// of the copied columns, so the warm subspace dominates the first sweep.
func adaptFactor(src *mat.Matrix, rows, cols int, seed uint64) *mat.Matrix {
	sr, sc := src.Dims()
	out := mat.New(rows, cols)
	state := seed*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	next := func() float64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return float64(state>>11)/(1<<53) - 0.5
	}
	const noise = 1e-3
	for i := range rows {
		dst := out.Row(i)
		for j := range cols {
			if i < sr && j < sc {
				dst[j] = src.At(i, j)
			} else {
				dst[j] = noise * next()
			}
		}
	}
	return mat.Orthonormalize(out)
}

// randomOrthonormal returns an n×k matrix with orthonormal columns drawn
// from a deterministic pseudo-random start.
func randomOrthonormal(n, k int, seed uint64) *mat.Matrix {
	m := mat.New(n, k)
	state := seed*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	next := func() float64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return float64(state>>11)/(1<<53) - 0.5
	}
	for i := range n {
		for j := range k {
			m.Set(i, j, next())
		}
	}
	return mat.Orthonormalize(m)
}

// Reconstruct materializes F̂ = S ×₁Y⁽¹⁾ ×₂Y⁽²⁾ ×₃Y⁽³⁾. Tests only: the
// production distance path never forms F̂ (Theorems 1 and 2).
func (d *Decomposition) Reconstruct() *tensor.Dense3 {
	return tensor.Reconstruct(d.Core, d.Y1, d.Y2, d.Y3)
}

// CoreDims returns the core dimensions (J1, J2, J3).
func (d *Decomposition) CoreDims() (int, int, int) { return d.Core.Dims() }
