package tucker

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func benchTensor(i1, i2, i3, nnz int) *tensor.Sparse3 {
	rng := rand.New(rand.NewSource(1))
	f := tensor.NewSparse3(i1, i2, i3)
	for range nnz {
		f.Append(rng.Intn(i1), rng.Intn(i2), rng.Intn(i3), 1)
	}
	f.Build()
	return f
}

// BenchmarkDecomposeSmall measures a full HOOI decomposition at the scale
// of the Tiny evaluation corpus.
func BenchmarkDecomposeSmall(b *testing.B) {
	f := benchTensor(80, 48, 60, 3000)
	b.ResetTimer()
	for i := range b.N {
		Decompose(f, Options{J1: 12, J2: 16, J3: 12, Seed: uint64(i), MaxSweeps: 3})
	}
}

// BenchmarkDecomposeHOSVDInitAblation compares the two initialization
// strategies DESIGN.md calls out: HOSVD of the raw unfoldings vs random
// orthonormal starts.
func BenchmarkDecomposeHOSVDInitAblation(b *testing.B) {
	f := benchTensor(80, 48, 60, 3000)
	b.Run("hosvd-init", func(b *testing.B) {
		for i := range b.N {
			Decompose(f, Options{J1: 12, J2: 16, J3: 12, Seed: uint64(i), MaxSweeps: 3})
		}
	})
	b.Run("random-init", func(b *testing.B) {
		for i := range b.N {
			Decompose(f, Options{J1: 12, J2: 16, J3: 12, Seed: uint64(i), MaxSweeps: 3, SkipHOSVDInit: true})
		}
	})
}

// BenchmarkSweepCost isolates one ALS sweep's dominant kernel chain at a
// mid-size scale (projected unfolding + truncated left SVD).
func BenchmarkSweepCost(b *testing.B) {
	f := benchTensor(400, 300, 500, 20000)
	b.ResetTimer()
	for i := range b.N {
		Decompose(f, Options{J1: 32, J2: 48, J3: 40, Seed: uint64(i), MaxSweeps: 1})
	}
}
