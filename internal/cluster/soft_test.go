package cluster

import (
	"math"
	"testing"

	"repro/internal/mat"
)

// softFixture builds two tight groups plus one item equidistant between
// them (a "polysemous" item).
func softFixture() *mat.Matrix {
	// Items 0-2: group A; 3-5: group B; 6: halfway between.
	n := 7
	d := mat.New(n, n)
	groupOf := func(i int) int {
		if i <= 2 {
			return 0
		}
		if i <= 5 {
			return 1
		}
		return 2
	}
	for i := range n {
		for j := i + 1; j < n; j++ {
			var dist float64
			gi, gj := groupOf(i), groupOf(j)
			switch {
			case gi == gj:
				dist = 0.2
			case gi == 2 || gj == 2:
				dist = 1.0 // the ambiguous item sits between the groups
			default:
				dist = 3.0
			}
			d.Set(i, j, dist)
			d.Set(j, i, dist)
		}
	}
	return d
}

func TestSoftSpectralMatchesHardOnClearItems(t *testing.T) {
	d := softFixture()
	hard := Spectral(d, SpectralOptions{Sigma: 1, K: 2, Seed: 3})
	soft := SoftSpectral(d, SoftOptions{Spectral: SpectralOptions{Sigma: 1, K: 2, Seed: 3}})
	if soft.K != 2 {
		t.Fatalf("K = %d, want 2", soft.K)
	}
	// Clear items agree between hard and soft argmax.
	for i := range 6 {
		if soft.Hard[i] != hard.Assign[i] {
			t.Fatalf("item %d: soft argmax %d != hard %d", i, soft.Hard[i], hard.Assign[i])
		}
	}
}

func TestSoftSpectralWeightsNormalized(t *testing.T) {
	d := softFixture()
	soft := SoftSpectral(d, SoftOptions{Spectral: SpectralOptions{Sigma: 1, K: 2, Seed: 3}})
	for i, m := range soft.Weights {
		var total float64
		for c, w := range m {
			if w <= 0 || w > 1+1e-9 {
				t.Fatalf("item %d concept %d weight %v out of range", i, c, w)
			}
			total += w
		}
		if math.Abs(total-1) > 1e-9 {
			t.Fatalf("item %d weights sum to %v", i, total)
		}
	}
}

func TestSoftSpectralAmbiguousItemSplits(t *testing.T) {
	d := softFixture()
	soft := SoftSpectral(d, SoftOptions{
		Spectral:    SpectralOptions{Sigma: 1, K: 2, Seed: 3},
		Temperature: 1.0, // softer memberships
	})
	// The ambiguous item 6 should carry meaningful mass on both concepts,
	// unlike the clear items.
	amb := soft.Weights[6]
	if len(amb) < 2 {
		t.Fatalf("ambiguous item has hard membership: %v", amb)
	}
	var minW float64 = 1
	for _, w := range amb {
		if w < minW {
			minW = w
		}
	}
	if minW < 0.05 {
		t.Fatalf("ambiguous item barely splits: %v", amb)
	}
	// A clear item should be much sharper than the ambiguous one.
	clearMax, ambMax := 0.0, 0.0
	for _, w := range soft.Weights[0] {
		if w > clearMax {
			clearMax = w
		}
	}
	for _, w := range amb {
		if w > ambMax {
			ambMax = w
		}
	}
	if clearMax <= ambMax {
		t.Fatalf("clear item (max %v) should be sharper than ambiguous (max %v)", clearMax, ambMax)
	}
}

func TestSoftEntropyDiagnostic(t *testing.T) {
	d := softFixture()
	sharp := SoftSpectral(d, SoftOptions{Spectral: SpectralOptions{Sigma: 1, K: 2, Seed: 3}, Temperature: 0.1})
	fuzzy := SoftSpectral(d, SoftOptions{Spectral: SpectralOptions{Sigma: 1, K: 2, Seed: 3}, Temperature: 2})
	if sharp.Entropy() >= fuzzy.Entropy() {
		t.Fatalf("entropy should grow with temperature: sharp %v fuzzy %v", sharp.Entropy(), fuzzy.Entropy())
	}
}

func TestSoftSpectralEmpty(t *testing.T) {
	soft := SoftSpectral(mat.New(0, 0), SoftOptions{Spectral: SpectralOptions{K: 1}})
	if len(soft.Weights) != 0 {
		t.Fatal("empty input should give empty assignment")
	}
}

func TestSoftMaxConceptsTruncates(t *testing.T) {
	d := softFixture()
	soft := SoftSpectral(d, SoftOptions{
		Spectral:    SpectralOptions{Sigma: 1, K: 2, Seed: 3},
		Temperature: 5, // everything fuzzy
		MaxConcepts: 1,
	})
	for i, m := range soft.Weights {
		if len(m) != 1 {
			t.Fatalf("item %d: MaxConcepts=1 should force hard membership, got %v", i, m)
		}
	}
}
