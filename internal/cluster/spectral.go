package cluster

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/mat"
)

// SpectralOptions configures Spectral, following Section V.
type SpectralOptions struct {
	// Sigma is the affinity bandwidth: A[i,j] = exp(−D²[i,j]/σ²). If zero,
	// sigma is set to the median of the off-diagonal distances, a standard
	// self-tuning choice.
	Sigma float64
	// K is the number of clusters. If zero, K is chosen as the smallest
	// number of leading eigenvectors of L covering VarianceCovered of the
	// spectrum mass (the paper's "95% of the variance" rule).
	K int
	// VarianceCovered is used when K is zero. Zero means 0.95.
	VarianceCovered float64
	// MaxK bounds the automatic choice of K. Zero means n/2.
	MaxK int
	// Seed drives k-means seeding and (for large n) the eigensolver.
	Seed int64
	// LocalScaling, when positive, replaces the global bandwidth with
	// Zelnik-Manor–Perona local scaling: A[i,j] = exp(−D²[i,j]/(σᵢσⱼ))
	// where σᵢ is item i's distance to its LocalScaling-th nearest
	// neighbor. This compensates for heteroscedastic distance scales
	// (popular tags live at much larger radii than rare ones) and
	// overrides Sigma. A value of 7 is the standard choice.
	LocalScaling int
	// KNN, when positive, sparsifies the affinity to the union of each
	// item's KNN nearest neighbors (affinities outside the neighborhood
	// graph are zeroed). Latent-semantic tag distances are locally
	// reliable but globally heteroscedastic; clustering the neighborhood
	// graph uses exactly the reliable part.
	KNN int
	// Shards partitions the final k-means assignment scans into
	// contiguous row blocks (see KMeansOptions.Shards). Clustering is
	// bit-identical at any shard count; ≤ 1 means one block.
	Shards int
	// Assigner, if non-nil, is passed through to the final k-means (see
	// KMeansOptions.Assigner) — the distributed-build hook for the Lloyd
	// assignment scans.
	Assigner Assigner
}

// SpectralResult is the outcome of spectral clustering.
type SpectralResult struct {
	// Assign[i] is the cluster (concept) of item i.
	Assign []int
	// K is the number of clusters used.
	K int
	// Sigma is the affinity bandwidth used.
	Sigma float64
	// EigenvalueMass is the fraction of the spectrum mass covered by the
	// K leading eigenvectors (diagnostic).
	EigenvalueMass float64
}

// Spectral clusters n items given their pairwise distance matrix D
// (symmetric, zero diagonal) with the Ng–Jordan–Weiss algorithm exactly
// as listed in Section V:
//
//  1. A[i,j] = exp(−D²[i,j]/σ²) for i≠j, A[i,i] = 0.
//  2. M = diag(row sums of A); L = M^(−1/2) · A · M^(−1/2).
//  3. X = the k leading eigenvectors of L, rows normalized to unit length.
//  4. k-means on the rows of X.
func Spectral(d *mat.Matrix, opts SpectralOptions) *SpectralResult {
	res, x := spectralCore(d, opts)
	if x == nil {
		return res
	}
	km := KMeans(x, res.K, KMeansOptions{Seed: opts.Seed, Shards: opts.Shards, Assigner: opts.Assigner})
	res.Assign = km.Assign
	return res
}

// spectralCore performs steps 1–3 of the algorithm (affinity, normalized
// Laplacian, row-normalized eigenvector embedding), leaving the final
// k-means to the caller; Spectral and SoftSpectral share it.
func spectralCore(d *mat.Matrix, opts SpectralOptions) (*SpectralResult, *mat.Matrix) {
	n, c := d.Dims()
	if n != c {
		panic(fmt.Sprintf("cluster: distance matrix must be square, got %d×%d", n, c))
	}
	if n == 0 {
		return &SpectralResult{}, nil
	}
	sigma := opts.Sigma
	if sigma == 0 {
		sigma = medianOffDiagonal(d)
		if sigma == 0 {
			sigma = 1
		}
	}

	// Step 1: affinity matrix, with either the paper's global bandwidth
	// or per-item local scaling.
	a := mat.New(n, n)
	if opts.LocalScaling > 0 {
		local := localScales(d, opts.LocalScaling)
		for i := range n {
			for j := range n {
				if i == j {
					continue
				}
				dv := d.At(i, j)
				denom := local[i] * local[j]
				if denom == 0 {
					denom = sigma * sigma
				}
				a.Set(i, j, math.Exp(-dv*dv/denom))
			}
		}
	} else {
		s2 := sigma * sigma
		for i := range n {
			for j := range n {
				if i == j {
					continue
				}
				dv := d.At(i, j)
				a.Set(i, j, math.Exp(-dv*dv/s2))
			}
		}
	}

	// Optional k-NN sparsification: zero affinities outside the union
	// neighborhood graph.
	if opts.KNN > 0 && opts.KNN < n-1 {
		keep := make([][]bool, n)
		for i := range keep {
			keep[i] = make([]bool, n)
		}
		type dj struct {
			d float64
			j int
		}
		row := make([]dj, 0, n-1)
		for i := range n {
			row = row[:0]
			for j := range n {
				if j != i {
					row = append(row, dj{d: d.At(i, j), j: j})
				}
			}
			sort.Slice(row, func(a, b int) bool {
				if row[a].d != row[b].d {
					return row[a].d < row[b].d
				}
				return row[a].j < row[b].j
			})
			for r := 0; r < opts.KNN && r < len(row); r++ {
				keep[i][row[r].j] = true
				keep[row[r].j][i] = true
			}
		}
		for i := range n {
			for j := range n {
				if i != j && !keep[i][j] {
					a.Set(i, j, 0)
				}
			}
		}
	}

	// Step 2: normalized affinity L = M^(−1/2) A M^(−1/2).
	minv := make([]float64, n)
	for i := range n {
		var sum float64
		for j := range n {
			sum += a.At(i, j)
		}
		if sum > 0 {
			minv[i] = 1 / math.Sqrt(sum)
		}
	}
	l := mat.New(n, n)
	for i := range n {
		for j := range n {
			l.Set(i, j, minv[i]*a.At(i, j)*minv[j])
		}
	}

	// Step 3: leading eigenvectors. L's spectrum lies in [−1, 1]; shifting
	// by +I makes the operator PSD with the same eigenvector ordering, so
	// subspace iteration is applicable for large n.
	k := opts.K
	var x *mat.Matrix
	var mass float64
	if k > 0 {
		eig := topEigenvectors(l, k, opts.Seed, n)
		x = eig.Vectors
		mass = spectrumMass(eig.Values, k, n, l)
	} else {
		full := fullEigen(l)
		k, mass = chooseK(full.Values, opts)
		x = full.Vectors.SubMatrix(0, n, 0, k)
	}

	// Row-normalize X.
	for i := range n {
		mat.Normalize(x.Row(i))
	}

	return &SpectralResult{K: k, Sigma: sigma, EigenvalueMass: mass}, x
}

// topEigenvectors extracts the k leading eigenvectors of l. For small n
// the exact dense solver is used; for large n, subspace iteration on the
// shifted PSD operator L+I.
func topEigenvectors(l *mat.Matrix, k int, seed int64, n int) *mat.Eigen {
	if k > n {
		k = n
	}
	if n <= 400 {
		full := fullEigen(l)
		return &mat.Eigen{
			Values:  full.Values[:k],
			Vectors: full.Vectors.SubMatrix(0, n, 0, k),
		}
	}
	shifted := &shiftOp{m: l}
	eig := mat.SubspaceIteration(shifted, k, mat.SubspaceOptions{Seed: uint64(seed)})
	for i := range eig.Values {
		eig.Values[i] -= 1
	}
	return eig
}

func fullEigen(l *mat.Matrix) *mat.Eigen {
	if l.Rows() <= 64 {
		return mat.SymEig(l)
	}
	return mat.SymEigTridiag(l)
}

// shiftOp applies y = (M+I)x.
type shiftOp struct{ m *mat.Matrix }

func (o *shiftOp) Dim() int { return o.m.Rows() }

func (o *shiftOp) Apply(x, y []float64) {
	mo := mat.MatrixOperator{M: o.m}
	mo.Apply(x, y)
	for i := range y {
		y[i] += x[i]
	}
}

// chooseK picks the smallest k whose leading eigenvalues cover the target
// fraction of the positive spectrum mass.
func chooseK(values []float64, opts SpectralOptions) (int, float64) {
	target := opts.VarianceCovered
	if target == 0 {
		target = 0.95
	}
	maxK := opts.MaxK
	if maxK == 0 {
		maxK = (len(values) + 1) / 2
	}
	if maxK > len(values) {
		maxK = len(values)
	}
	var total float64
	for _, v := range values {
		if v > 0 {
			total += v
		}
	}
	if total == 0 {
		return 1, 1
	}
	var acc float64
	for i := range maxK {
		if values[i] > 0 {
			acc += values[i]
		}
		if acc/total >= target {
			return i + 1, acc / total
		}
	}
	return maxK, acc / total
}

// spectrumMass estimates the covered fraction using the trace of L as the
// total positive mass proxy when only k eigenvalues are known.
func spectrumMass(values []float64, k, n int, l *mat.Matrix) float64 {
	var tr float64
	for i := range n {
		tr += l.At(i, i)
	}
	var acc float64
	for i := 0; i < k && i < len(values); i++ {
		if values[i] > 0 {
			acc += values[i]
		}
	}
	// The trace of the normalized affinity with zero diagonal is 0, so
	// fall back to the sum of located eigenvalues as the denominator.
	denom := tr
	if denom <= 0 {
		denom = acc
	}
	if denom == 0 {
		return 0
	}
	return acc / denom
}

// localScales returns each item's distance to its k-th nearest neighbor.
func localScales(d *mat.Matrix, k int) []float64 {
	n := d.Rows()
	out := make([]float64, n)
	row := make([]float64, 0, n-1)
	for i := range n {
		row = row[:0]
		for j := range n {
			if j != i {
				row = append(row, d.At(i, j))
			}
		}
		sort.Float64s(row)
		idx := k - 1
		if idx >= len(row) {
			idx = len(row) - 1
		}
		if idx < 0 {
			continue
		}
		out[i] = row[idx]
	}
	return out
}

// medianOffDiagonal returns the median of the strictly-upper-triangle
// distances, a robust default bandwidth.
func medianOffDiagonal(d *mat.Matrix) float64 {
	n := d.Rows()
	var vals []float64
	for i := range n {
		for j := i + 1; j < n; j++ {
			vals = append(vals, d.At(i, j))
		}
	}
	if len(vals) == 0 {
		return 0
	}
	sort.Float64s(vals)
	m := len(vals) / 2
	if len(vals)%2 == 1 {
		return vals[m]
	}
	return 0.5 * (vals[m-1] + vals[m])
}
