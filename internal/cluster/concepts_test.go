package cluster

import (
	"testing"

	"repro/internal/mat"
)

// threeGroups returns 3 well-separated point groups of 8 points each.
func threeGroups() *mat.Matrix {
	centers := [][]float64{{0, 0}, {20, 0}, {0, 20}}
	m := mat.New(24, 2)
	for i := range 24 {
		c := centers[i/8]
		jitter := float64(i%8) * 0.05
		m.Set(i, 0, c[0]+jitter)
		m.Set(i, 1, c[1]-jitter)
	}
	return m
}

func TestConceptKMeansSeparatesGroups(t *testing.T) {
	res := ConceptKMeans(threeGroups(), nil, SpectralOptions{K: 3, Seed: 1})
	if res.K != 3 {
		t.Fatalf("K = %d, want 3", res.K)
	}
	for g := range 3 {
		want := res.Assign[g*8]
		for i := g * 8; i < (g+1)*8; i++ {
			if res.Assign[i] != want {
				t.Fatalf("group %d split: %v", g, res.Assign)
			}
		}
	}
	if res.Assign[0] == res.Assign[8] || res.Assign[8] == res.Assign[16] || res.Assign[0] == res.Assign[16] {
		t.Fatalf("groups merged: %v", res.Assign)
	}
}

func TestConceptKMeansDeterministic(t *testing.T) {
	pts := threeGroups()
	a := ConceptKMeans(pts, nil, SpectralOptions{K: 3, Seed: 7})
	b := ConceptKMeans(pts, nil, SpectralOptions{K: 3, Seed: 7})
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("nondeterministic assignment")
		}
	}
}

func TestConceptKMeansAutoK(t *testing.T) {
	// A spectrum with two dominant components: the 95% rule keeps 2.
	spectrum := []float64{10, 10, 0.1, 0.01}
	res := ConceptKMeans(threeGroups(), spectrum, SpectralOptions{Seed: 1})
	if res.K != 2 {
		t.Fatalf("auto K = %d, want 2 from spectrum %v", res.K, spectrum)
	}
	if res.EigenvalueMass < 0.95 {
		t.Fatalf("covered mass = %v", res.EigenvalueMass)
	}

	// A flat spectrum runs into the MaxK bound.
	flat := []float64{1, 1, 1, 1, 1, 1, 1, 1}
	res = ConceptKMeans(threeGroups(), flat, SpectralOptions{Seed: 1, MaxK: 3})
	if res.K != 3 {
		t.Fatalf("MaxK-bounded K = %d, want 3", res.K)
	}

	// No spectrum at all: column energies stand in.
	res = ConceptKMeans(threeGroups(), nil, SpectralOptions{Seed: 1})
	if res.K < 1 || res.K > 12 {
		t.Fatalf("fallback K = %d out of range", res.K)
	}
}

func TestConceptKMeansEmpty(t *testing.T) {
	res := ConceptKMeans(mat.New(0, 0), nil, SpectralOptions{})
	if res.K != 0 || res.Assign != nil {
		t.Fatalf("empty input: %+v", res)
	}
}
