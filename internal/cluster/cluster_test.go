package cluster

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mat"
)

func TestKMeansTwoBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 40
	pts := mat.New(2*n, 2)
	for i := range n {
		pts.Set(i, 0, 0+0.1*rng.NormFloat64())
		pts.Set(i, 1, 0+0.1*rng.NormFloat64())
		pts.Set(n+i, 0, 5+0.1*rng.NormFloat64())
		pts.Set(n+i, 1, 5+0.1*rng.NormFloat64())
	}
	res := KMeans(pts, 2, KMeansOptions{Seed: 3})
	// All points in the first blob share a label distinct from the second.
	first := res.Assign[0]
	for i := range n {
		if res.Assign[i] != first {
			t.Fatalf("point %d not in first blob's cluster", i)
		}
		if res.Assign[n+i] == first {
			t.Fatalf("point %d leaked into first blob's cluster", n+i)
		}
	}
	if res.Inertia > float64(2*n)*0.1 {
		t.Fatalf("inertia %v too high for tight blobs", res.Inertia)
	}
}

func TestKMeansDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := mat.New(30, 3)
	for i := range 30 {
		for j := range 3 {
			pts.Set(i, j, rng.NormFloat64())
		}
	}
	a := KMeans(pts, 4, KMeansOptions{Seed: 9})
	b := KMeans(pts, 4, KMeansOptions{Seed: 9})
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed produced different clusterings")
		}
	}
}

func TestKMeansKEqualsN(t *testing.T) {
	pts := mat.FromRows([][]float64{{0, 0}, {1, 1}, {2, 2}})
	res := KMeans(pts, 3, KMeansOptions{Seed: 1})
	seen := map[int]bool{}
	for _, a := range res.Assign {
		seen[a] = true
	}
	if len(seen) != 3 {
		t.Fatalf("k=n should give singleton clusters, got %v", res.Assign)
	}
	if res.Inertia > 1e-12 {
		t.Fatalf("k=n inertia should be 0, got %v", res.Inertia)
	}
}

func TestKMeansPanicsOnBadK(t *testing.T) {
	pts := mat.New(3, 2)
	for _, k := range []int{0, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for k=%d", k)
				}
			}()
			KMeans(pts, k, KMeansOptions{})
		}()
	}
}

// TestSpectralPaperExample reproduces the worked example of Section V:
// distances D̂12=√1.92, D̂13=√5.94, D̂23=√2.36, σ=1, k=2 must cluster
// {t1, t2} together and {t3} alone. The paper also prints the
// intermediate A, M, L matrices, which we check.
func TestSpectralPaperExample(t *testing.T) {
	d12 := math.Sqrt(1.92)
	d13 := math.Sqrt(5.94)
	d23 := math.Sqrt(2.36)
	d := mat.FromRows([][]float64{
		{0, d12, d13},
		{d12, 0, d23},
		{d13, d23, 0},
	})

	// Check the affinity entries from the paper: A12=0.147, A13=0.00263,
	// A23=0.0944.
	a12 := math.Exp(-1.92)
	a13 := math.Exp(-5.94)
	a23 := math.Exp(-2.36)
	if math.Abs(a12-0.147) > 0.001 || math.Abs(a13-0.00263) > 0.0001 || math.Abs(a23-0.0944) > 0.0005 {
		t.Fatalf("affinities (%.4f, %.5f, %.4f) do not match the paper", a12, a13, a23)
	}

	res := Spectral(d, SpectralOptions{Sigma: 1, K: 2, Seed: 5})
	if res.K != 2 {
		t.Fatalf("K = %d, want 2", res.K)
	}
	if res.Assign[0] != res.Assign[1] {
		t.Fatalf("t1 and t2 should share a cluster: %v", res.Assign)
	}
	if res.Assign[2] == res.Assign[0] {
		t.Fatalf("t3 should be alone: %v", res.Assign)
	}
}

func TestSpectralSeparatesBlocks(t *testing.T) {
	// Three well-separated groups of items: small in-group distances,
	// large between-group distances.
	groups := [][]int{{0, 1, 2, 3}, {4, 5, 6}, {7, 8, 9, 10}}
	n := 11
	d := mat.New(n, n)
	groupOf := make([]int, n)
	for g, ids := range groups {
		for _, i := range ids {
			groupOf[i] = g
		}
	}
	rng := rand.New(rand.NewSource(3))
	for i := range n {
		for j := i + 1; j < n; j++ {
			dist := 0.2 + 0.05*rng.Float64()
			if groupOf[i] != groupOf[j] {
				dist = 3 + 0.2*rng.Float64()
			}
			d.Set(i, j, dist)
			d.Set(j, i, dist)
		}
	}
	res := Spectral(d, SpectralOptions{Sigma: 1, K: 3, Seed: 7})
	for _, ids := range groups {
		for _, i := range ids[1:] {
			if res.Assign[i] != res.Assign[ids[0]] {
				t.Fatalf("group broken: %v", res.Assign)
			}
		}
	}
	if res.Assign[0] == res.Assign[4] || res.Assign[4] == res.Assign[7] || res.Assign[0] == res.Assign[7] {
		t.Fatalf("groups merged: %v", res.Assign)
	}
}

func TestSpectralAutoK(t *testing.T) {
	// With K unset, the eigenvalue-mass rule should find a reasonable
	// number of clusters for clearly separated blocks.
	groups := [][]int{{0, 1, 2}, {3, 4, 5}, {6, 7, 8}}
	n := 9
	d := mat.New(n, n)
	groupOf := make([]int, n)
	for g, ids := range groups {
		for _, i := range ids {
			groupOf[i] = g
		}
	}
	for i := range n {
		for j := i + 1; j < n; j++ {
			dist := 0.1
			if groupOf[i] != groupOf[j] {
				dist = 4.0
			}
			d.Set(i, j, dist)
			d.Set(j, i, dist)
		}
	}
	res := Spectral(d, SpectralOptions{Sigma: 1, VarianceCovered: 0.95, Seed: 1})
	if res.K < 2 || res.K > 5 {
		t.Fatalf("auto K = %d, expected near 3", res.K)
	}
}

func TestSpectralAutoSigma(t *testing.T) {
	// Sigma defaulting must not crash and must produce a valid clustering.
	d := mat.FromRows([][]float64{
		{0, 1, 5},
		{1, 0, 5},
		{5, 5, 0},
	})
	res := Spectral(d, SpectralOptions{K: 2, Seed: 2})
	if res.Sigma <= 0 {
		t.Fatalf("sigma = %v, want positive", res.Sigma)
	}
	if res.Assign[0] != res.Assign[1] || res.Assign[2] == res.Assign[0] {
		t.Fatalf("clustering wrong: %v", res.Assign)
	}
}

func TestSpectralLargeUsesSubspace(t *testing.T) {
	// n > 400 exercises the subspace-iteration path.
	n := 420
	half := n / 2
	d := mat.New(n, n)
	for i := range n {
		for j := i + 1; j < n; j++ {
			dist := 0.3
			if (i < half) != (j < half) {
				dist = 4.0
			}
			d.Set(i, j, dist)
			d.Set(j, i, dist)
		}
	}
	res := Spectral(d, SpectralOptions{Sigma: 1, K: 2, Seed: 11})
	for i := 1; i < half; i++ {
		if res.Assign[i] != res.Assign[0] {
			t.Fatalf("first half split at %d", i)
		}
	}
	if res.Assign[half] == res.Assign[0] {
		t.Fatal("halves merged")
	}
	for i := half + 1; i < n; i++ {
		if res.Assign[i] != res.Assign[half] {
			t.Fatalf("second half split at %d", i)
		}
	}
}

func TestSpectralNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Spectral(mat.New(2, 3), SpectralOptions{K: 1})
}
