package cluster

import (
	"fmt"
	"sort"

	"repro/internal/mat"
	"repro/internal/shard"
)

// Centroids computes the k cluster centroids implied by an existing
// assignment over the rows of points, skipping rows whose entry in
// skip is true (and rows assigned outside [0,k)). It is the bridge from
// a previous build's concept partition to the current embedding space:
// the incremental update seeds it with every previously-labeled tag at
// its NEW embedding position under its OLD label (previous labels are
// the best prior for locating each concept after a small delta — see
// core.Update), skips only rows with no previous label, and then
// re-assigns the moved rows against the resulting centroids.
//
// Clusters with no surviving member come back as zero rows; ok reports
// whether every cluster kept at least one member — callers should fall
// back to a full re-clustering when it is false.
func Centroids(points *mat.Matrix, assign []int, k int, skip []bool) (centers *mat.Matrix, ok bool) {
	n, dim := points.Dims()
	if len(assign) != n {
		panic(fmt.Sprintf("cluster: %d assignments for %d points", len(assign), n))
	}
	centers = mat.New(k, dim)
	counts := make([]int, k)
	for i := range n {
		if skip != nil && skip[i] {
			continue
		}
		c := assign[i]
		if c < 0 || c >= k {
			continue
		}
		counts[c]++
		mat.AXPY(1, points.Row(i), centers.Row(c))
	}
	ok = true
	for c := range k {
		if counts[c] == 0 {
			ok = false
			continue
		}
		mat.ScaleVec(1/float64(counts[c]), centers.Row(c))
	}
	return centers, ok
}

// AssignNearest re-assigns exactly the listed rows to their nearest
// centroid (squared Euclidean, ties to the lower cluster id), writing
// into assign in place. Rows not listed keep their previous cluster —
// the incremental counterpart of a full Lloyd assignment sweep.
func AssignNearest(points, centers *mat.Matrix, rows []int, assign []int) {
	AssignNearestSharded(points, centers, rows, assign, 1)
}

// AssignNearestSharded is AssignNearest with the listed rows partitioned
// by the shard plan over all points: each shard re-assigns the listed
// rows that fall inside its block as one unit of work (concurrently
// in-process). Each row's nearest centroid depends only on that row and
// the centers, and shards write disjoint assign entries, so the result
// is bit-identical at any shard count. rows must be sorted ascending.
func AssignNearestSharded(points, centers *mat.Matrix, rows []int, assign []int, shards int) {
	k := centers.Rows()
	reassign := func(sub []int) {
		for _, i := range sub {
			best, bd := 0, sqDist(points.Row(i), centers.Row(0))
			for c := 1; c < k; c++ {
				if d := sqDist(points.Row(i), centers.Row(c)); d < bd {
					bd, best = d, c
				}
			}
			assign[i] = best
		}
	}
	plan := shard.Plan(points.Rows(), shards)
	if len(plan) <= 1 {
		reassign(rows)
		return
	}
	shard.ForEach(plan, func(_ int, r shard.Range) {
		lo := sort.SearchInts(rows, r.Lo)
		hi := sort.SearchInts(rows, r.Hi)
		reassign(rows[lo:hi])
	})
}
