// Package cluster implements the concept-distillation machinery of
// Section V: k-means with k-means++ seeding, and the Ng–Jordan–Weiss
// spectral clustering algorithm applied to the pairwise tag distance
// matrix to group tags into concepts.
package cluster

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/mat"
	"repro/internal/shard"
)

// KMeansOptions configures KMeans.
type KMeansOptions struct {
	// MaxIter bounds Lloyd iterations. Zero means 100.
	MaxIter int
	// Restarts runs the whole algorithm this many times with different
	// seedings and keeps the lowest-inertia result. Zero means 4.
	Restarts int
	// Seed makes the clustering deterministic.
	Seed int64
	// Shards partitions the Lloyd assignment step — the O(n·k·dim)
	// dominant cost — into contiguous row blocks scanned as independent
	// units of work (concurrently in-process; distributable in
	// principle). The centroid update merges the shard assignments with
	// a deterministic reduction in global row order, so the clustering
	// is bit-identical at any shard count. ≤ 1 means one block.
	Shards int
	// Assigner, if non-nil, computes each Lloyd assignment block in place
	// of the in-process scan — the distributed-build hook. An
	// implementation must return exactly what ScanBlock returns (the
	// nearest-centroid scan is deterministic, so this is well-defined); a
	// block whose remote scan fails falls back to the local one, which is
	// bit-identical, so Assigner errors never change the clustering.
	Assigner Assigner
}

// Assigner computes one Lloyd assignment block on behalf of KMeans: the
// nearest-centroid index and squared distance for rows [lo, hi) of
// points, block-relative. Implementations must match ScanBlock bit for
// bit — it is the contract the distributed coordinator honors by running
// the identical scan remotely.
type Assigner interface {
	AssignBlock(points, centers *mat.Matrix, lo, hi int) ([]int, []float64, error)
}

// ScanBlock is the in-process Lloyd assignment block: for each row in
// [lo, hi) of points, the index of the nearest center (lowest index wins
// ties, via the strict < comparison) and the squared distance to it,
// indexed block-relative. It is both the local unit of work of the
// sharded assignment step and the reference behavior remote Assigners
// must reproduce.
func ScanBlock(points, centers *mat.Matrix, lo, hi int) ([]int, []float64) {
	k := centers.Rows()
	idx := make([]int, hi-lo)
	sq := make([]float64, hi-lo)
	for i := lo; i < hi; i++ {
		bi, bd := 0, math.Inf(1)
		for c := range k {
			d := sqDist(points.Row(i), centers.Row(c))
			if d < bd {
				bd, bi = d, c
			}
		}
		idx[i-lo], sq[i-lo] = bi, bd
	}
	return idx, sq
}

// KMeansResult is a hard assignment of points to k clusters.
type KMeansResult struct {
	// Assign[i] is the cluster index of point i.
	Assign []int
	// Centers holds the k centroids as rows.
	Centers *mat.Matrix
	// Inertia is the summed squared distance of points to their centers.
	Inertia float64
}

// KMeans clusters the rows of points into k groups using Lloyd's
// algorithm with k-means++ seeding. Empty clusters are re-seeded from the
// point farthest from its center.
func KMeans(points *mat.Matrix, k int, opts KMeansOptions) *KMeansResult {
	n, dim := points.Dims()
	if k <= 0 || k > n {
		panic(fmt.Sprintf("cluster: k=%d out of range for %d points", k, n))
	}
	maxIter := opts.MaxIter
	if maxIter == 0 {
		maxIter = 100
	}
	restarts := opts.Restarts
	if restarts == 0 {
		restarts = 4
	}

	var best *KMeansResult
	for rs := range restarts {
		rng := rand.New(rand.NewSource(opts.Seed + int64(rs)*7919))
		res := kmeansOnce(points, k, maxIter, opts.Shards, opts.Assigner, rng)
		if best == nil || res.Inertia < best.Inertia {
			best = res
		}
	}
	_ = dim
	return best
}

func kmeansOnce(points *mat.Matrix, k, maxIter, shards int, asg Assigner, rng *rand.Rand) *KMeansResult {
	n, dim := points.Dims()
	centers := seedPlusPlus(points, k, rng)
	assign := make([]int, n)
	dists := make([]float64, n)
	plan := shard.Plan(n, shards)
	blockChanged := make([]bool, len(plan))

	for iter := range maxIter {
		// Assignment step, one shard block per unit of work. Each row's
		// nearest centroid depends only on that row and the centers, and
		// blocks write disjoint assign/dists entries, so the step is
		// bit-identical at any shard count — with or without a remote
		// Assigner, whose contract (and local fallback) is ScanBlock.
		for b := range blockChanged {
			blockChanged[b] = false
		}
		shard.ForEach(plan, func(b int, r shard.Range) {
			idx, sq := scanBlockWith(asg, points, centers, r.Lo, r.Hi)
			for i := r.Lo; i < r.Hi; i++ {
				if assign[i] != idx[i-r.Lo] {
					assign[i] = idx[i-r.Lo]
					blockChanged[b] = true
				}
				dists[i] = sq[i-r.Lo]
			}
		})
		changed := false
		for _, c := range blockChanged {
			changed = changed || c
		}
		// Update step: merge the shard assignments into centroids with a
		// deterministic reduction — accumulate in global row order, never
		// in shard-arrival order, so the floating-point sums (and
		// therefore the centroids) do not depend on the shard plan.
		counts := make([]int, k)
		next := mat.New(k, dim)
		for i := range n {
			c := assign[i]
			counts[c]++
			mat.AXPY(1, points.Row(i), next.Row(c))
		}
		for c := range k {
			if counts[c] == 0 {
				// Re-seed an empty cluster at the farthest point.
				far, fd := 0, -1.0
				for i := range n {
					if dists[i] > fd {
						fd, far = dists[i], i
					}
				}
				copy(next.Row(c), points.Row(far))
				dists[far] = 0
				changed = true
				continue
			}
			mat.ScaleVec(1/float64(counts[c]), next.Row(c))
		}
		centers = next
		if !changed && iter > 0 {
			break
		}
	}

	var inertia float64
	for i := range n {
		inertia += sqDist(points.Row(i), centers.Row(assign[i]))
	}
	return &KMeansResult{Assign: assign, Centers: centers, Inertia: inertia}
}

// scanBlockWith runs one assignment block through the configured
// Assigner, falling back to the bit-identical local scan when none is
// set, the remote scan fails, or its result has the wrong shape.
func scanBlockWith(asg Assigner, points, centers *mat.Matrix, lo, hi int) ([]int, []float64) {
	if asg != nil {
		idx, sq, err := asg.AssignBlock(points, centers, lo, hi)
		if err == nil && len(idx) == hi-lo && len(sq) == hi-lo {
			return idx, sq
		}
	}
	return ScanBlock(points, centers, lo, hi)
}

// seedPlusPlus picks k initial centers with the k-means++ D² weighting.
func seedPlusPlus(points *mat.Matrix, k int, rng *rand.Rand) *mat.Matrix {
	n, dim := points.Dims()
	centers := mat.New(k, dim)
	first := rng.Intn(n)
	copy(centers.Row(0), points.Row(first))
	d2 := make([]float64, n)
	for i := range n {
		d2[i] = sqDist(points.Row(i), centers.Row(0))
	}
	for c := 1; c < k; c++ {
		var total float64
		for _, d := range d2 {
			total += d
		}
		var idx int
		if total <= 0 {
			idx = rng.Intn(n)
		} else {
			u := rng.Float64() * total
			acc := 0.0
			idx = n - 1
			for i, d := range d2 {
				acc += d
				if acc >= u {
					idx = i
					break
				}
			}
		}
		copy(centers.Row(c), points.Row(idx))
		for i := range n {
			if d := sqDist(points.Row(i), centers.Row(c)); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return centers
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
