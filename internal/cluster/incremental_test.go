package cluster

import (
	"testing"

	"repro/internal/mat"
)

// twoBlobs builds 2-D points in two well-separated groups.
func twoBlobs() *mat.Matrix {
	return mat.FromRows([][]float64{
		{0, 0}, {0.1, 0}, {0, 0.1}, // cluster 0
		{10, 10}, {10.1, 10}, {10, 10.1}, // cluster 1
	})
}

func TestCentroidsAndAssignNearest(t *testing.T) {
	points := twoBlobs()
	assign := []int{0, 0, 0, 1, 1, 1}

	centers, ok := Centroids(points, assign, 2, nil)
	if !ok {
		t.Fatal("every cluster has members")
	}
	if c := centers.Row(0); c[0] > 1 || c[1] > 1 {
		t.Fatalf("centroid 0 = %v", c)
	}
	if c := centers.Row(1); c[0] < 9 || c[1] < 9 {
		t.Fatalf("centroid 1 = %v", c)
	}

	// A "moved" point near blob 1 must re-assign to cluster 1, and only
	// the listed rows may change.
	moved := points.Clone()
	moved.SetRow(2, []float64{9.9, 9.9})
	got := append([]int(nil), assign...)
	AssignNearest(moved, centers, []int{2}, got)
	want := []int{0, 0, 1, 1, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("assign = %v, want %v", got, want)
		}
	}
}

func TestCentroidsSkipAndEmptyCluster(t *testing.T) {
	points := twoBlobs()
	assign := []int{0, 0, 0, 1, 1, 1}

	// Skipping all of cluster 1's members leaves it empty: ok=false so
	// callers fall back to a full re-clustering.
	_, ok := Centroids(points, assign, 2, []bool{false, false, false, true, true, true})
	if ok {
		t.Fatal("want ok=false when a cluster loses every member")
	}

	// Out-of-range assignments (e.g. -1 for unassigned) are ignored, not
	// fatal.
	assign[3] = -1
	centers, ok := Centroids(points, assign, 2, nil)
	if !ok {
		t.Fatal("remaining members keep cluster 1 alive")
	}
	if c := centers.Row(1); c[0] < 9 {
		t.Fatalf("centroid 1 = %v", c)
	}
}

// TestAssignNearestMatchesFullKMeansOnStablePartition pins the
// incremental path to the full algorithm where they must agree: when the
// partition is already a fixed point, assigning any row against the
// implied centroids reproduces its existing label.
func TestAssignNearestMatchesFullKMeansOnStablePartition(t *testing.T) {
	points := twoBlobs()
	km := KMeans(points, 2, KMeansOptions{Seed: 3})
	centers, ok := Centroids(points, km.Assign, 2, nil)
	if !ok {
		t.Fatal("kmeans produced an empty cluster")
	}
	got := append([]int(nil), km.Assign...)
	AssignNearest(points, centers, []int{0, 1, 2, 3, 4, 5}, got)
	for i := range got {
		if got[i] != km.Assign[i] {
			t.Fatalf("row %d re-assigned from %d to %d on a stable partition", i, km.Assign[i], got[i])
		}
	}
}
