package cluster

import "repro/internal/mat"

// ConceptKMeans distills concepts by running k-means directly on the
// rows of the tag embedding E = Λ₂·Y⁽²⁾. By Theorem 2, squared Euclidean
// distances between embedding rows are exactly the purified D̂² values,
// so Lloyd's assignment and centroid updates operate in the same geometry
// the spectral path clusters — without the O(|T|²) affinity matrix or an
// eigendecomposition: O(|T|·K·k₂) per iteration.
//
// When opts.K is zero, K is chosen by the paper's variance-covered rule
// applied to the embedding's own spectrum: the smallest number of leading
// Λ₂ components covering VarianceCovered (default 0.95) of the Σλ² mass,
// bounded by MaxK (default |T|/2). spectrum is the Λ₂ singular-value
// vector; if it is empty the column energies of points are used, which
// coincide with Λ₂² when Y⁽²⁾ has orthonormal columns.
func ConceptKMeans(points *mat.Matrix, spectrum []float64, opts SpectralOptions) *SpectralResult {
	n := points.Rows()
	if n == 0 {
		return &SpectralResult{}
	}
	energies := make([]float64, 0, len(spectrum))
	for _, l := range spectrum {
		energies = append(energies, l*l)
	}
	if len(energies) == 0 {
		energies = columnEnergies(points)
	}

	k := opts.K
	mass := 1.0
	if k <= 0 {
		k, mass = chooseKFromEnergies(energies, opts, n)
	}
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	km := KMeans(points, k, KMeansOptions{Seed: opts.Seed, Shards: opts.Shards, Assigner: opts.Assigner})
	return &SpectralResult{Assign: km.Assign, K: k, EigenvalueMass: mass}
}

// chooseKFromEnergies picks the smallest k whose leading energies cover
// the target fraction of the total mass, mirroring chooseK on the
// spectral path.
func chooseKFromEnergies(energies []float64, opts SpectralOptions, n int) (int, float64) {
	target := opts.VarianceCovered
	if target == 0 {
		target = 0.95
	}
	maxK := opts.MaxK
	if maxK == 0 {
		maxK = (n + 1) / 2
	}
	if maxK > n {
		maxK = n
	}
	if maxK < 1 {
		maxK = 1
	}
	var total float64
	for _, e := range energies {
		if e > 0 {
			total += e
		}
	}
	if total == 0 {
		return 1, 1
	}
	var acc float64
	k := 1
	for i, e := range energies {
		if i >= maxK {
			break
		}
		if e > 0 {
			acc += e
		}
		k = i + 1
		if acc/total >= target {
			break
		}
	}
	return k, acc / total
}

// columnEnergies returns the per-column squared mass of points.
func columnEnergies(points *mat.Matrix) []float64 {
	n, dim := points.Dims()
	out := make([]float64, dim)
	for i := range n {
		for j, v := range points.Row(i) {
			out[j] += v * v
		}
	}
	return out
}
