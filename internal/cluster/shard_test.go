package cluster

import (
	"math/rand"
	"testing"

	"repro/internal/mat"
)

func randPoints(n, dim int, seed int64) *mat.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := mat.New(n, dim)
	for i := range n {
		row := m.Row(i)
		for j := range row {
			row[j] = rng.NormFloat64() + float64((i%5))*3
		}
	}
	return m
}

// TestKMeansShardedBitIdentical pins the sharded Lloyd iteration to the
// monolithic one: the assignment step shards, the centroid update
// reduces in global row order, so assignments, centers and inertia must
// not move a bit at any shard count.
func TestKMeansShardedBitIdentical(t *testing.T) {
	points := randPoints(143, 4, 7)
	single := KMeans(points, 5, KMeansOptions{Seed: 3})
	for _, shards := range []int{2, 4, 13, 143, 1000} {
		sharded := KMeans(points, 5, KMeansOptions{Seed: 3, Shards: shards})
		if sharded.Inertia != single.Inertia {
			t.Fatalf("shards=%d: inertia %v, want %v", shards, sharded.Inertia, single.Inertia)
		}
		for i := range single.Assign {
			if sharded.Assign[i] != single.Assign[i] {
				t.Fatalf("shards=%d: assignment diverges at point %d", shards, i)
			}
		}
		for i, v := range single.Centers.Data() {
			if sharded.Centers.Data()[i] != v {
				t.Fatalf("shards=%d: center element %d diverges", shards, i)
			}
		}
	}
}

// TestConceptKMeansShardedBitIdentical covers the pipeline entry point,
// including the auto-K spectrum rule, under sharding.
func TestConceptKMeansShardedBitIdentical(t *testing.T) {
	points := randPoints(80, 6, 11)
	single := ConceptKMeans(points, nil, SpectralOptions{Seed: 5})
	sharded := ConceptKMeans(points, nil, SpectralOptions{Seed: 5, Shards: 7})
	if sharded.K != single.K {
		t.Fatalf("K: sharded %d, single %d", sharded.K, single.K)
	}
	for i := range single.Assign {
		if sharded.Assign[i] != single.Assign[i] {
			t.Fatalf("assignment diverges at point %d", i)
		}
	}
}

// TestAssignNearestShardedMatches pins the sharded re-assignment of an
// explicit row list to the serial one.
func TestAssignNearestShardedMatches(t *testing.T) {
	points := randPoints(97, 3, 13)
	km := KMeans(points, 4, KMeansOptions{Seed: 1})
	rows := make([]int, 0, 40)
	for i := 0; i < 97; i += 3 {
		rows = append(rows, i)
	}
	serial := append([]int(nil), km.Assign...)
	AssignNearest(points, km.Centers, rows, serial)
	for _, shards := range []int{2, 5, 97} {
		sharded := append([]int(nil), km.Assign...)
		AssignNearestSharded(points, km.Centers, rows, sharded, shards)
		for i := range serial {
			if sharded[i] != serial[i] {
				t.Fatalf("shards=%d: assignment diverges at row %d", shards, i)
			}
		}
	}
}
