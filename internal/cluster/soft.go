package cluster

import (
	"math"
	"sort"

	"repro/internal/mat"
)

// SoftAssignment is a weighted tag→concept mapping: Weights[i] lists the
// concepts item i belongs to with normalized membership weights.
//
// The paper performs hard clustering and notes (footnote 5) that "to
// address the polysemy problem, a soft-clustering method could be
// employed, so that each tag may be assigned to multiple concepts with
// different weights. We are exploring in this direction." SoftSpectral
// implements that extension: after the spectral embedding, memberships
// are derived from distances to the k-means centroids instead of a hard
// argmin, so a polysemous tag splits its mass between the concepts whose
// centroids it straddles.
type SoftAssignment struct {
	// Weights[i] maps concept → membership weight; weights sum to 1.
	Weights []map[int]float64
	// Hard[i] is the argmax concept (identical to hard clustering's
	// assignment in the common case).
	Hard []int
	// K is the number of concepts.
	K int
}

// SoftOptions configures SoftSpectral.
type SoftOptions struct {
	Spectral SpectralOptions
	// Temperature controls membership sharpness: weights are
	// exp(−d²/τ²)-normalized distances to centroids in the embedded
	// space. Zero means 0.5 (fairly sharp; most tags stay effectively
	// hard while genuinely ambiguous tags split).
	Temperature float64
	// MaxConcepts truncates each item's membership list to its top
	// concepts (after which weights are renormalized). Zero means 3.
	MaxConcepts int
}

// SoftSpectral runs the Ng–Jordan–Weiss pipeline of Section V but
// returns weighted memberships instead of a hard partition.
func SoftSpectral(d *mat.Matrix, opts SoftOptions) *SoftAssignment {
	n := d.Rows()
	if n == 0 {
		return &SoftAssignment{}
	}
	tau := opts.Temperature
	if tau == 0 {
		tau = 0.5
	}
	maxC := opts.MaxConcepts
	if maxC == 0 {
		maxC = 3
	}

	embedded, km, k := spectralEmbedding(d, opts.Spectral)
	out := &SoftAssignment{
		Weights: make([]map[int]float64, n),
		Hard:    make([]int, n),
		K:       k,
	}
	t2 := tau * tau
	for i := range n {
		row := embedded.Row(i)
		// Distance to every centroid; convert to memberships.
		type cw struct {
			c int
			w float64
		}
		ws := make([]cw, k)
		for c := range k {
			ws[c] = cw{c: c, w: math.Exp(-sqDist(row, km.Centers.Row(c)) / t2)}
		}
		sort.Slice(ws, func(a, b int) bool {
			if ws[a].w != ws[b].w {
				return ws[a].w > ws[b].w
			}
			return ws[a].c < ws[b].c
		})
		if len(ws) > maxC {
			ws = ws[:maxC]
		}
		var total float64
		for _, x := range ws {
			total += x.w
		}
		m := make(map[int]float64, len(ws))
		if total > 0 {
			for _, x := range ws {
				if w := x.w / total; w > 1e-6 {
					m[x.c] = w
				}
			}
		} else {
			m[km.Assign[i]] = 1
		}
		out.Weights[i] = m
		out.Hard[i] = ws[0].c
	}
	return out
}

// spectralEmbedding factors the common part of Spectral and SoftSpectral:
// it returns the row-normalized eigenvector embedding, the k-means result
// on it, and the concept count.
func spectralEmbedding(d *mat.Matrix, opts SpectralOptions) (*mat.Matrix, *KMeansResult, int) {
	res, x := spectralCore(d, opts)
	km := KMeans(x, res.K, KMeansOptions{Seed: opts.Seed})
	return x, km, res.K
}

// Entropy returns the average membership entropy in nats — a diagnostic
// for how "soft" an assignment actually is (0 = fully hard).
func (s *SoftAssignment) Entropy() float64 {
	if len(s.Weights) == 0 {
		return 0
	}
	// Sorted concept order keeps the float accumulation — and thus the
	// reported entropy — bit-identical across runs.
	var total float64
	for _, m := range s.Weights {
		concepts := make([]int, 0, len(m))
		for cc := range m {
			concepts = append(concepts, cc)
		}
		sort.Ints(concepts)
		for _, cc := range concepts {
			if w := m[cc]; w > 0 {
				total -= w * math.Log(w)
			}
		}
	}
	return total / float64(len(s.Weights))
}
