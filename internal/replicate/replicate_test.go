package replicate

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeModel writes a model-file stand-in to dir and returns its path.
// Replication never parses model bytes — verification is pure SHA-256 —
// so any payload exercises the full plane.
func fakeModel(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// testReplica is a minimal replica: an atomic serving version and a
// record of swapped files.
type testReplica struct {
	version atomic.Uint64
	mu      sync.Mutex
	swapped []string
}

func (r *testReplica) current() uint64 { return r.version.Load() }

func (r *testReplica) swap(path string, version uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.swapped = append(r.swapped, path)
	r.version.Store(version)
	return nil
}

func newWriter(t *testing.T, pub *Publisher) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /model", pub.ServeModel)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestPullVerifySwap(t *testing.T) {
	dir := t.TempDir()
	model := fakeModel(t, dir, "model.clsi", "model bytes v1")
	var pub Publisher
	published, err := pub.Publish(7, model)
	if err != nil {
		t.Fatal(err)
	}
	if published.Fingerprint == "" || published.Size != int64(len("model bytes v1")) {
		t.Fatalf("published = %+v", published)
	}
	srv := newWriter(t, &pub)

	rep := &testReplica{}
	p := &Puller{Writer: srv.URL, Spool: filepath.Join(dir, "spool"), Current: rep.current, Swap: rep.swap}
	p.Notify(Announcement{Version: 7, Fingerprint: published.Fingerprint})
	if err := p.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	if rep.current() != 7 {
		t.Fatalf("replica at version %d, want 7", rep.current())
	}
	want := filepath.Join(dir, "spool", "model-v7.clsi")
	if got, err := os.ReadFile(want); err != nil || string(got) != "model bytes v1" {
		t.Fatalf("spool file %q: %v %q", want, err, got)
	}
	st := p.Status()
	if st.Pulls != 1 || st.Failures != 0 || st.WriterVersion != 7 || st.State != StateIdle {
		t.Fatalf("status = %+v", st)
	}

	// Re-sync with nothing new: monotonic guard makes it a no-op.
	if err := p.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := p.Status(); st.Pulls != 1 {
		t.Fatalf("no-op sync pulled: %+v", st)
	}
}

// TestTruncatedTransferFailsVerification: a writer (or network) that
// cuts the body short must not produce a swap — the hash disagrees with
// the advertised fingerprint and the cycle fails, leaving no canonical
// spool file behind.
func TestTruncatedTransferFailsVerification(t *testing.T) {
	dir := t.TempDir()
	model := fakeModel(t, dir, "model.clsi", "the whole model payload")
	var pub Publisher
	published, err := pub.Publish(3, model)
	if err != nil {
		t.Fatal(err)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /model", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(VersionHeader, "3")
		w.Header().Set(SumHeader, published.Fingerprint)
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("the whole mod")) // truncated
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	rep := &testReplica{}
	spool := filepath.Join(dir, "spool")
	p := &Puller{Writer: srv.URL, Spool: spool, Current: rep.current, Swap: rep.swap}
	err = p.Sync(context.Background())
	if err == nil || !strings.Contains(err.Error(), "verify") {
		t.Fatalf("err = %v, want verification failure", err)
	}
	if rep.current() != 0 || len(rep.swapped) != 0 {
		t.Fatal("truncated transfer reached the swap")
	}
	if _, err := os.Stat(filepath.Join(spool, "model-v3.clsi")); !os.IsNotExist(err) {
		t.Fatalf("unverified bytes reached the canonical spool name (err=%v)", err)
	}
	if leftovers, _ := filepath.Glob(filepath.Join(spool, "*.part")); len(leftovers) != 0 {
		t.Fatalf("temp files not cleaned up: %v", leftovers)
	}
	if st := p.Status(); st.Failures != 1 || st.LastError == "" {
		t.Fatalf("status = %+v", st)
	}
}

// TestAnnouncementFingerprintMismatch: when the pull matches the
// writer's headers but not the announcement that triggered it (a writer
// republished version V with different bytes — a lineage fork), the
// replica refuses the swap.
func TestAnnouncementFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	model := fakeModel(t, dir, "model.clsi", "forked bytes")
	var pub Publisher
	if _, err := pub.Publish(5, model); err != nil {
		t.Fatal(err)
	}
	srv := newWriter(t, &pub)

	rep := &testReplica{}
	p := &Puller{Writer: srv.URL, Spool: filepath.Join(dir, "spool"), Current: rep.current, Swap: rep.swap}
	p.Notify(Announcement{Version: 5, Fingerprint: strings.Repeat("ab", 32)})
	err := p.Sync(context.Background())
	if err == nil || !strings.Contains(err.Error(), "announced fingerprint") {
		t.Fatalf("err = %v, want announcement mismatch", err)
	}
	if len(rep.swapped) != 0 {
		t.Fatal("forked model reached the swap")
	}
}

// TestMonotonicGuard: a replica already serving version 9 discards a
// writer still on 7 — announcements and pulls never roll a follower
// back, and reordered notifies are absorbed.
func TestMonotonicGuard(t *testing.T) {
	dir := t.TempDir()
	model := fakeModel(t, dir, "model.clsi", "old model")
	var pub Publisher
	published, err := pub.Publish(7, model)
	if err != nil {
		t.Fatal(err)
	}
	srv := newWriter(t, &pub)

	rep := &testReplica{}
	rep.version.Store(9)
	p := &Puller{Writer: srv.URL, Spool: filepath.Join(dir, "spool"), Current: rep.current, Swap: rep.swap}
	p.Notify(Announcement{Version: 9, Fingerprint: "x"})
	p.Notify(Announcement{Version: 7, Fingerprint: published.Fingerprint}) // reordered: older after newer
	if st := p.Status(); st.WriterVersion != 9 {
		t.Fatalf("reordered notify regressed WriterVersion: %+v", st)
	}
	if err := p.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(rep.swapped) != 0 {
		t.Fatal("monotonic guard let an older model swap in")
	}
	if st := p.Status(); st.Pulls != 0 || st.Failures != 0 {
		t.Fatalf("status = %+v", st)
	}
}

// TestPublisherRefusesRollback: the writer-side mirror of the monotonic
// guard.
func TestPublisherRefusesRollback(t *testing.T) {
	dir := t.TempDir()
	var pub Publisher
	if _, err := pub.Publish(4, fakeModel(t, dir, "a", "aaa")); err != nil {
		t.Fatal(err)
	}
	if _, err := pub.Publish(3, fakeModel(t, dir, "b", "bbb")); err == nil {
		t.Fatal("publisher accepted a version rollback")
	}
	if cur, ok := pub.Current(); !ok || cur.Version != 4 {
		t.Fatalf("current = %+v, %v", cur, ok)
	}
}

func TestServeModelBeforePublish(t *testing.T) {
	var pub Publisher
	srv := newWriter(t, &pub)
	resp, err := http.Get(srv.URL + "/model")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
}

// TestRunConvergesSlowFollower: a follower that missed intermediate
// versions converges straight to the writer's newest on the next kick —
// and a restarted puller (fresh state over the same spool) converges
// again after the writer moves on.
func TestRunConvergesSlowFollower(t *testing.T) {
	dir := t.TempDir()
	var pub Publisher
	published, err := pub.Publish(2, fakeModel(t, dir, "v2.clsi", "model v2"))
	if err != nil {
		t.Fatal(err)
	}
	srv := newWriter(t, &pub)

	rep := &testReplica{}
	spool := filepath.Join(dir, "spool")
	p := &Puller{Writer: srv.URL, Spool: spool, Current: rep.current, Swap: rep.swap}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); p.Run(ctx, time.Hour) }()

	waitVersion := func(want uint64) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for rep.current() != want {
			if time.Now().After(deadline) {
				t.Fatalf("replica stuck at %d, want %d (status %+v)", rep.current(), want, p.Status())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	// Run's startup sync converges without any notify (restart recovery).
	waitVersion(2)

	// The writer advances twice; the follower only hears about the last
	// one (the v3 notify was "lost") and must land on v4 directly.
	if _, err := pub.Publish(3, fakeModel(t, dir, "v3.clsi", "model v3")); err != nil {
		t.Fatal(err)
	}
	published, err = pub.Publish(4, fakeModel(t, dir, "v4.clsi", "model v4"))
	if err != nil {
		t.Fatal(err)
	}
	p.Notify(Announcement{Version: 4, Fingerprint: published.Fingerprint})
	waitVersion(4)
	if got, err := os.ReadFile(filepath.Join(spool, "model-v4.clsi")); err != nil || string(got) != "model v4" {
		t.Fatalf("spool v4: %v %q", err, got)
	}
	cancel()
	<-done

	// "Restart": a brand-new puller over the same spool, seeded with the
	// version the replica already serves. It must no-op until the writer
	// moves, then converge again.
	p2 := &Puller{Writer: srv.URL, Spool: spool, Current: rep.current, Swap: rep.swap}
	if err := p2.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := p2.Status(); st.Pulls != 0 {
		t.Fatalf("restarted puller re-pulled a current model: %+v", st)
	}
	if _, err := pub.Publish(5, fakeModel(t, dir, "v5.clsi", "model v5")); err != nil {
		t.Fatal(err)
	}
	if err := p2.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	if rep.current() != 5 {
		t.Fatalf("restarted puller stuck at %d, want 5", rep.current())
	}
}

// TestSwapFailureRetries: a replica whose swap dies (killed mid-swap)
// records the failure and completes the cycle on the next sync.
func TestSwapFailureRetries(t *testing.T) {
	dir := t.TempDir()
	var pub Publisher
	if _, err := pub.Publish(2, fakeModel(t, dir, "m.clsi", "model")); err != nil {
		t.Fatal(err)
	}
	srv := newWriter(t, &pub)

	rep := &testReplica{}
	var fail atomic.Bool
	fail.Store(true)
	p := &Puller{
		Writer:  srv.URL,
		Spool:   filepath.Join(dir, "spool"),
		Current: rep.current,
		Swap: func(path string, version uint64) error {
			if fail.Load() {
				return os.ErrClosed // stand-in for a crash mid-swap
			}
			return rep.swap(path, version)
		},
	}
	if err := p.Sync(context.Background()); err == nil {
		t.Fatal("want swap failure")
	}
	if st := p.Status(); st.Failures != 1 || st.Pulls != 0 {
		t.Fatalf("status = %+v", st)
	}
	fail.Store(false)
	if err := p.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	if rep.current() != 2 {
		t.Fatalf("replica at %d after retry, want 2", rep.current())
	}
}

// TestNotifierBroadcast: all targets receive the announcement; dead
// targets come back as errors without blocking live ones.
func TestNotifierBroadcast(t *testing.T) {
	var got atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /notify", func(w http.ResponseWriter, r *http.Request) {
		var a Announcement
		if err := jsonDecode(r, &a); err != nil || a.Version != 12 {
			t.Errorf("bad announcement: %+v err=%v", a, err)
		}
		got.Add(1)
		w.WriteHeader(http.StatusAccepted)
	})
	live1 := httptest.NewServer(mux)
	defer live1.Close()
	live2 := httptest.NewServer(mux)
	defer live2.Close()

	n := &Notifier{
		Targets: []string{live1.URL, live2.URL, "http://127.0.0.1:1"},
		Client:  &http.Client{Timeout: time.Second},
		Retries: 1,
	}
	errs := n.Broadcast(context.Background(), Announcement{Version: 12, Fingerprint: "f"})
	if got.Load() != 2 {
		t.Fatalf("live targets notified %d times, want 2", got.Load())
	}
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "127.0.0.1:1") {
		t.Fatalf("errs = %v, want exactly the dead target", errs)
	}
}

func jsonDecode(r *http.Request, v any) error {
	defer r.Body.Close()
	return json.NewDecoder(r.Body).Decode(v)
}
