// Package replicate is the model-distribution plane of the serving
// fleet: one writer builds versioned model snapshots, N read-only
// replicas serve them. Distribution is notify-then-pull — the writer
// broadcasts a tiny announcement {version, sha256} after publishing a
// snapshot, and each replica pulls the model file from the writer at
// its own pace, verifies the fingerprint, and hot-swaps it in.
//
// The design holds two invariants no matter how messy the fleet gets:
//
//   - Verified bytes: a replica never swaps in a model whose SHA-256
//     does not match what the writer advertised — a truncated download,
//     a corrupted spool file, or a writer that republished mid-pull all
//     fail verification and are retried on the next notify or poll.
//   - Monotonic versions: a replica never swaps backwards. A slow
//     follower that receives announcements out of order, or pulls an
//     older file than it already serves, discards it; version skew is
//     visible in Status until the follower converges, never a rollback.
//
// Announcements are best-effort (a lost notify only delays a replica
// until its anti-entropy poll), so the writer never blocks on a slow or
// dead replica, and replicas never need to be registered anywhere — a
// restarted replica converges from its first poll.
package replicate

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"
)

// Header names the model transfer travels under; the puller verifies
// the body against them, so a proxy that strips headers fails closed.
const (
	VersionHeader = "X-Model-Version"
	SumHeader     = "X-Model-Sha256"
)

// Announcement is the notify payload: the writer's newest snapshot
// version and the hex SHA-256 of its model file bytes.
type Announcement struct {
	Version     uint64 `json:"version"`
	Fingerprint string `json:"fingerprint"`
}

// Published describes the snapshot a Publisher currently offers.
type Published struct {
	Version     uint64
	Fingerprint string
	Path        string
	Size        int64
}

// Publisher is the writer half: it tracks the latest published model
// file and serves its bytes. Publish and ServeModel are safe for
// concurrent use; ServeModel always serves a consistent
// (version, fingerprint, bytes) triple even while a newer snapshot is
// being published.
type Publisher struct {
	mu  sync.Mutex
	cur Published
}

// hashFile returns the hex SHA-256 of a file's bytes — the fingerprint
// announcements carry and pullers verify.
func hashFile(path string) (string, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", 0, err
	}
	defer f.Close()
	h := sha256.New()
	n, err := io.Copy(h, f)
	if err != nil {
		return "", 0, err
	}
	return hex.EncodeToString(h.Sum(nil)), n, nil
}

// Publish records a new snapshot file as the current model, hashing it
// for the announcement. Versions must be monotonically increasing;
// republishing an older version than the current one is rejected, so a
// racing pair of publishes can never advertise a rollback.
func (p *Publisher) Publish(version uint64, path string) (Published, error) {
	sum, size, err := hashFile(path)
	if err != nil {
		return Published{}, fmt.Errorf("replicate: hash snapshot: %w", err)
	}
	pub := Published{Version: version, Fingerprint: sum, Path: path, Size: size}
	p.mu.Lock()
	defer p.mu.Unlock()
	if version < p.cur.Version {
		return Published{}, fmt.Errorf("replicate: publish version %d behind current %d", version, p.cur.Version)
	}
	p.cur = pub
	return pub, nil
}

// Current returns the published snapshot, if any.
func (p *Publisher) Current() (Published, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cur, p.cur.Version != 0
}

// ServeModel is the GET /model handler: the current snapshot's bytes
// with its version and fingerprint in the response headers. The file is
// re-verified against the fingerprint while streaming — if it was
// overwritten on disk after Publish, the transfer is cut short and the
// puller's verification fails, rather than serving bytes under a stale
// fingerprint.
func (p *Publisher) ServeModel(w http.ResponseWriter, r *http.Request) {
	cur, ok := p.Current()
	if !ok {
		writeJSONError(w, http.StatusServiceUnavailable, "no model published yet")
		return
	}
	f, err := os.Open(cur.Path)
	if err != nil {
		writeJSONError(w, http.StatusInternalServerError, "open snapshot: %v", err)
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(cur.Size, 10))
	w.Header().Set(VersionHeader, strconv.FormatUint(cur.Version, 10))
	w.Header().Set(SumHeader, cur.Fingerprint)
	w.WriteHeader(http.StatusOK)
	_, _ = io.Copy(w, io.LimitReader(f, cur.Size))
}

// Notifier broadcasts announcements to a fixed set of replica base
// URLs. Delivery is best-effort: each target is tried a few times with
// a short backoff, concurrently, and failures are returned for logging
// — never propagated to the publish path (the replica's anti-entropy
// poll is the safety net).
type Notifier struct {
	Targets []string
	// Client defaults to a 5s-timeout client; Retries to 3 attempts.
	Client  *http.Client
	Retries int
}

func (n *Notifier) client() *http.Client {
	if n.Client != nil {
		return n.Client
	}
	return &http.Client{Timeout: 5 * time.Second}
}

// Broadcast POSTs the announcement to every target's /notify,
// concurrently. It returns one error per failed target (nil-free when
// every replica acknowledged).
func (n *Notifier) Broadcast(ctx context.Context, a Announcement) []error {
	retries := n.Retries
	if retries <= 0 {
		retries = 3
	}
	body, _ := json.Marshal(a)
	errCh := make(chan error, len(n.Targets))
	var wg sync.WaitGroup
	for _, target := range n.Targets {
		wg.Add(1)
		go func(target string) {
			defer wg.Done()
			var last error
			for attempt := range retries {
				if attempt > 0 {
					select {
					case <-time.After(time.Duration(attempt) * 100 * time.Millisecond):
					case <-ctx.Done():
						errCh <- fmt.Errorf("notify %s: %w", target, ctx.Err())
						return
					}
				}
				req, err := http.NewRequestWithContext(ctx, http.MethodPost, target+"/notify", bytes.NewReader(body))
				if err != nil {
					errCh <- fmt.Errorf("notify %s: %w", target, err)
					return
				}
				req.Header.Set("Content-Type", "application/json")
				resp, err := n.client().Do(req)
				if err != nil {
					last = err
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode < 300 {
					return
				}
				last = fmt.Errorf("status %s", resp.Status)
			}
			errCh <- fmt.Errorf("notify %s: %w", target, last)
		}(target)
	}
	wg.Wait()
	close(errCh)
	var errs []error
	for err := range errCh {
		errs = append(errs, err)
	}
	return errs
}

// PullerState names where in the notify→pull→verify→swap machine a
// replica currently is.
type PullerState string

const (
	StateIdle      PullerState = "idle"
	StatePulling   PullerState = "pulling"
	StateVerifying PullerState = "verifying"
	StateSwapping  PullerState = "swapping"
)

// Status is a point-in-time snapshot of the puller, surfaced in the
// replica's /stats so fleet-wide version skew is observable.
type Status struct {
	State PullerState `json:"state"`
	// WriterVersion is the newest version the writer has announced (or
	// the puller has seen on a poll); comparing it to the serving version
	// gives the replica's skew.
	WriterVersion uint64 `json:"writer_version"`
	// Pulls counts completed pull+verify+swap cycles; Failures the
	// cycles that errored (each retried on the next notify or poll).
	Pulls     uint64 `json:"pulls"`
	Failures  uint64 `json:"failures"`
	LastError string `json:"last_error,omitempty"`
}

// Puller is the replica half of the state machine. Notify feeds it
// announcements (from POST /notify), Run drives it (each announcement
// kicks a sync; a poll interval bounds how stale a replica can get when
// every notify was lost), and Sync performs one notify→pull→verify→swap
// cycle. The caller supplies the two integration points: Current (the
// serving model's version) and Swap (load the verified spool file and
// hot-swap it in).
type Puller struct {
	// Writer is the writer's base URL (e.g. "http://10.0.0.1:8080").
	Writer string
	// Spool is the directory downloaded snapshots land in; the verified
	// file for version V is spooled as model-v<V>.clsi.
	Spool string
	// Current reports the version the replica is serving (0 before the
	// first model); Swap installs a verified snapshot.
	Current func() uint64
	Swap    func(path string, version uint64) error
	// Client defaults to a client with no overall timeout (model pulls
	// are long); per-cycle cancellation comes from the Sync context.
	Client *http.Client

	mu       sync.Mutex
	status   Status
	announce Announcement // newest announcement seen (version-monotonic)
	kick     chan struct{}
	kickOnce sync.Once
}

func (p *Puller) client() *http.Client {
	if p.Client != nil {
		return p.Client
	}
	return http.DefaultClient
}

func (p *Puller) kickCh() chan struct{} {
	p.kickOnce.Do(func() { p.kick = make(chan struct{}, 1) })
	return p.kick
}

// Notify records an announcement and kicks the Run loop. Announcements
// older than the newest one seen are absorbed (a reordered notify never
// regresses the target); the sync itself still only ever pulls the
// writer's current model.
func (p *Puller) Notify(a Announcement) {
	p.mu.Lock()
	if a.Version > p.announce.Version {
		p.announce = a
	}
	if a.Version > p.status.WriterVersion {
		p.status.WriterVersion = a.Version
	}
	p.mu.Unlock()
	select {
	case p.kickCh() <- struct{}{}:
	default:
	}
}

// Status returns the puller's current state and counters.
func (p *Puller) Status() Status {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.status
}

func (p *Puller) setState(s PullerState) {
	p.mu.Lock()
	p.status.State = s
	p.mu.Unlock()
}

// Run drives the puller until the context ends: every Notify kicks a
// Sync immediately, and the poll interval (anti-entropy) bounds how
// long a replica that missed every notify — it was down, the writer
// gave up retrying — stays behind. Sync errors are recorded in Status
// and retried on the next kick or tick.
func (p *Puller) Run(ctx context.Context, poll time.Duration) {
	if poll <= 0 {
		poll = 30 * time.Second
	}
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	// Converge immediately on startup: a restarted replica must not wait
	// a full poll interval to discover it is behind.
	_ = p.Sync(ctx)
	for {
		select {
		case <-p.kickCh():
			_ = p.Sync(ctx)
		case <-ticker.C:
			_ = p.Sync(ctx)
		case <-ctx.Done():
			return
		}
	}
}

// Sync performs one pull cycle against the writer: fetch /model, bail
// early unless it is strictly newer than what the replica serves,
// download into the spool while hashing, verify the SHA-256 against the
// writer's header (and the announcement that triggered the pull, when
// one is pending), and hand the verified file to Swap. A nil return
// means the replica now serves the writer's version — or already did.
func (p *Puller) Sync(ctx context.Context) error {
	err := p.sync(ctx)
	p.mu.Lock()
	p.status.State = StateIdle
	if err != nil {
		p.status.Failures++
		p.status.LastError = err.Error()
	} else {
		p.status.LastError = ""
	}
	p.mu.Unlock()
	return err
}

func (p *Puller) sync(ctx context.Context) error {
	p.setState(StatePulling)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.Writer+"/model", nil)
	if err != nil {
		return fmt.Errorf("replicate: %w", err)
	}
	resp, err := p.client().Do(req)
	if err != nil {
		return fmt.Errorf("replicate: pull: %w", err)
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("replicate: pull: writer answered %s", resp.Status)
	}
	version, err := strconv.ParseUint(resp.Header.Get(VersionHeader), 10, 64)
	if err != nil || version == 0 {
		return fmt.Errorf("replicate: pull: bad %s header %q", VersionHeader, resp.Header.Get(VersionHeader))
	}
	wantSum := resp.Header.Get(SumHeader)
	if wantSum == "" {
		return fmt.Errorf("replicate: pull: writer sent no %s header", SumHeader)
	}

	p.mu.Lock()
	if version > p.status.WriterVersion {
		p.status.WriterVersion = version
	}
	pending := p.announce
	p.mu.Unlock()

	// Monotonic guard, before a single body byte is read: a slow
	// follower that raced a newer local swap, or a writer that restarted
	// on an older model, never drags the replica backwards.
	if cur := p.Current(); version <= cur {
		return nil
	}

	// Download while hashing, into a temp file in the spool so the final
	// rename is atomic — a replica killed mid-download leaves a .part
	// file, never a plausible-looking snapshot.
	if err := os.MkdirAll(p.Spool, 0o755); err != nil {
		return fmt.Errorf("replicate: spool: %w", err)
	}
	tmp, err := os.CreateTemp(p.Spool, "pull-*.part")
	if err != nil {
		return fmt.Errorf("replicate: spool: %w", err)
	}
	defer os.Remove(tmp.Name())
	h := sha256.New()
	n, err := io.Copy(io.MultiWriter(tmp, h), resp.Body)
	if closeErr := tmp.Close(); err == nil {
		err = closeErr
	}
	if err != nil {
		return fmt.Errorf("replicate: download: %w", err)
	}

	p.setState(StateVerifying)
	gotSum := hex.EncodeToString(h.Sum(nil))
	if gotSum != wantSum {
		return fmt.Errorf("replicate: verify: downloaded %d bytes hash %s, writer advertised %s (truncated or corrupted transfer)", n, gotSum, wantSum)
	}
	if pending.Version == version && pending.Fingerprint != "" && pending.Fingerprint != gotSum {
		return fmt.Errorf("replicate: verify: version %d hash %s does not match announced fingerprint %s", version, gotSum, pending.Fingerprint)
	}

	final := filepath.Join(p.Spool, fmt.Sprintf("model-v%d.clsi", version))
	if err := os.Rename(tmp.Name(), final); err != nil {
		return fmt.Errorf("replicate: spool: %w", err)
	}

	p.setState(StateSwapping)
	if err := p.Swap(final, version); err != nil {
		return fmt.Errorf("replicate: swap v%d: %w", version, err)
	}
	p.mu.Lock()
	p.status.Pulls++
	p.mu.Unlock()
	return nil
}

func writeJSONError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
