package shard

import (
	"sync/atomic"
	"testing"
)

func TestPlanPartitionsExactly(t *testing.T) {
	cases := []struct {
		n, s   int
		blocks int
	}{
		{0, 4, 0},
		{-3, 4, 0},
		{1, 1, 1},
		{1, 8, 1},
		{10, 0, 1},
		{10, -2, 1},
		{10, 1, 1},
		{10, 3, 3},
		{10, 10, 10},
		{10, 25, 10},
		{1000, 7, 7},
	}
	for _, tc := range cases {
		plan := Plan(tc.n, tc.s)
		if len(plan) != tc.blocks {
			t.Fatalf("Plan(%d,%d): %d blocks, want %d", tc.n, tc.s, len(plan), tc.blocks)
		}
		lo := 0
		for i, r := range plan {
			if r.Lo != lo {
				t.Fatalf("Plan(%d,%d) block %d: Lo=%d, want %d (gap or overlap)", tc.n, tc.s, i, r.Lo, lo)
			}
			if r.Len() < 1 {
				t.Fatalf("Plan(%d,%d) block %d empty: %+v", tc.n, tc.s, i, r)
			}
			lo = r.Hi
		}
		if tc.blocks > 0 && lo != tc.n {
			t.Fatalf("Plan(%d,%d) covers [0,%d), want [0,%d)", tc.n, tc.s, lo, tc.n)
		}
		// Balanced: sizes differ by at most one, larger blocks first.
		for i := 1; i < len(plan); i++ {
			if plan[i].Len() > plan[i-1].Len() {
				t.Fatalf("Plan(%d,%d): block %d larger than block %d", tc.n, tc.s, i, i-1)
			}
			if plan[0].Len()-plan[i].Len() > 1 {
				t.Fatalf("Plan(%d,%d): block sizes differ by more than one", tc.n, tc.s)
			}
		}
	}
}

// TestPlanPropertySweep checks the plan invariants over the whole small
// (n, s) grid rather than hand-picked points: exact disjoint cover of
// [0, n), min(s, n) blocks (one block for s ≤ 1, none for n ≤ 0), sizes
// within one of each other with the remainder up front, and determinism
// in (n, s).
func TestPlanPropertySweep(t *testing.T) {
	for n := -2; n <= 64; n++ {
		for s := -2; s <= 70; s++ {
			plan := Plan(n, s)
			want := 0
			if n > 0 {
				want = max(1, min(s, n))
			}
			if len(plan) != want {
				t.Fatalf("Plan(%d,%d): %d blocks, want %d", n, s, len(plan), want)
			}
			lo := 0
			for i, r := range plan {
				if r.Lo != lo || r.Len() < 1 {
					t.Fatalf("Plan(%d,%d) block %d: %+v (prev end %d)", n, s, i, r, lo)
				}
				if d := plan[0].Len() - r.Len(); d < 0 || d > 1 {
					t.Fatalf("Plan(%d,%d) block %d: size %d vs first %d", n, s, i, r.Len(), plan[0].Len())
				}
				lo = r.Hi
			}
			if len(plan) > 0 && lo != n {
				t.Fatalf("Plan(%d,%d) covers [0,%d), want [0,%d)", n, s, lo, n)
			}
			again := Plan(n, s)
			for i := range plan {
				if again[i] != plan[i] {
					t.Fatalf("Plan(%d,%d) not deterministic at block %d", n, s, i)
				}
			}
		}
	}
}

func TestForEachCoversEveryBlockOnce(t *testing.T) {
	plan := Plan(103, 8)
	var rows atomic.Int64
	seen := make([]atomic.Int32, len(plan))
	ForEach(plan, func(i int, r Range) {
		seen[i].Add(1)
		rows.Add(int64(r.Len()))
	})
	for i := range seen {
		if seen[i].Load() != 1 {
			t.Fatalf("block %d ran %d times", i, seen[i].Load())
		}
	}
	if rows.Load() != 103 {
		t.Fatalf("blocks covered %d rows, want 103", rows.Load())
	}
}
