// Package shard plans the row partitioning the sharded offline pipeline
// is built on: a vocabulary of n rows is split into at most s contiguous
// blocks whose sizes differ by at most one. A block is the bounded unit
// of work every sharded stage operates on — the embedding projection
// writes one block of rows, the k-means assignment step scans one block,
// the mode-n unfolding product accumulates one block — so a build over a
// million-tag vocabulary decomposes into units one worker (or, later,
// one machine) can hold.
//
// Sharding never changes results: blocks are disjoint, each row's
// computation is independent of its block, and every cross-row reduction
// (centroid sums, top-k merges) is performed in a deterministic order
// that does not depend on the block boundaries. The exact pipeline is
// therefore bit-identical at any shard count — the same contract
// tucker.Options.Workers honors for the worker pool.
package shard

import "sync"

// Range is one contiguous block of rows [Lo, Hi).
type Range struct{ Lo, Hi int }

// Len returns the number of rows in the block.
func (r Range) Len() int { return r.Hi - r.Lo }

// Plan partitions [0, n) into min(s, n) contiguous blocks whose sizes
// differ by at most one (earlier blocks take the remainder). s ≤ 1 — and
// any n the plan cannot split — yields a single block; n ≤ 0 yields no
// blocks. The plan is deterministic in (n, s).
func Plan(n, s int) []Range {
	if n <= 0 {
		return nil
	}
	if s < 1 {
		s = 1
	}
	if s > n {
		s = n
	}
	out := make([]Range, s)
	base, rem := n/s, n%s
	lo := 0
	for i := range out {
		size := base
		if i < rem {
			size++
		}
		out[i] = Range{Lo: lo, Hi: lo + size}
		lo += size
	}
	return out
}

// ForEach runs fn once per block — fn receives the block's index in the
// plan and its range — concurrently when there is more than one block.
// Callers must write only to block-disjoint state (or synchronize
// themselves); under that contract the results are independent of
// scheduling and bit-identical to a serial loop over the blocks.
func ForEach(rs []Range, fn func(i int, r Range)) {
	if len(rs) == 1 {
		fn(0, rs[0])
		return
	}
	var wg sync.WaitGroup
	for i, r := range rs {
		wg.Add(1)
		go func(i int, r Range) {
			defer wg.Done()
			fn(i, r)
		}(i, r)
	}
	wg.Wait()
}
