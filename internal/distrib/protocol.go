// Package distrib distributes the three block-parallel stages of an
// offline CubeLSI build — the projected mode-n unfolding products of the
// ALS sweep, the Theorem 2 embedding projection, and the Lloyd
// assignment scans of concept clustering — across worker processes over
// HTTP.
//
// The protocol has a JSON control plane and a binary data plane. State
// payloads (the sparse tensor, factor matrices, the embedding source)
// are content-addressed: the coordinator pushes each payload to
// POST /v1/state/{key}, where key is the hex SHA-256 of the body, and
// exec requests (POST /v1/exec) reference payloads by key. A worker that
// is missing a referenced payload — it restarted, or evicted it —
// answers 409 with the missing keys in the X-Missing-State header, and
// the coordinator re-pushes and retries; workers are therefore
// stateless-recoverable. Payload bodies and block results use the
// internal/codec binary frames, which carry float64 values as raw
// IEEE-754 bits, so the block a worker returns is bit-for-bit the block
// the in-process shard path computes — and because blocks of any shard
// plan stitch to the monolithic result (see tensor.ProjectedUnfoldBlock,
// embed.ProjectRowsBlock, cluster.ScanBlock), a distributed build is
// bit-identical to a local one at any worker count.
//
// The Coordinator is robust to worker failure: per-request timeouts with
// bounded retry/backoff, health probing, reassignment of a failed
// worker's blocks to survivors, and — when every worker is gone — a
// local fallback that computes the block in-process. Remote errors slow
// a build down; they never change its output or fail it.
package distrib

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"

	"repro/internal/codec"
	"repro/internal/mat"
	"repro/internal/tensor"
)

// Payload kinds, the first byte of every state body.
const (
	kindSparse3 byte = 1 // one sparse-tensor frame
	kindMatrix  byte = 2 // one matrix frame
	kindProjSrc byte = 3 // one matrix frame (Y⁽²⁾) + one float frame (Λ₂)
)

// Exec ops.
const (
	opUnfold  = "unfold"  // tensor.ProjectedUnfoldBlock
	opProject = "project" // embed.ProjectRowsBlock
	opAssign  = "assign"  // cluster.ScanBlock
)

// State roles referenced by exec requests.
const (
	roleTensor  = "tensor"
	roleYA      = "ya"
	roleYB      = "yb"
	roleProj    = "proj"
	rolePoints  = "points"
	roleCenters = "centers"
)

// missingStateHeader names the header a 409 response lists missing
// state keys in (comma-separated).
const missingStateHeader = "X-Missing-State"

// execRequest is the JSON control-plane body of POST /v1/exec. Lo and Hi
// bound the block in the op's global row space; Workers bounds the
// worker-local thread pool (0 = all CPUs). States maps role names to
// content-addressed payload keys.
type execRequest struct {
	Op      string            `json:"op"`
	Mode    int               `json:"mode,omitempty"`
	Lo      int               `json:"lo"`
	Hi      int               `json:"hi"`
	Workers int               `json:"workers,omitempty"`
	States  map[string]string `json:"states"`
}

// projSrc is the embedding-projection source: the mode-2 factor and its
// singular values, the two inputs of embed.ProjectRowsBlock.
type projSrc struct {
	y2     *mat.Matrix
	lambda []float64
}

// encodePayload renders a state value as a kind-tagged binary body.
func encodePayload(v any) ([]byte, error) {
	var buf bytes.Buffer
	switch p := v.(type) {
	case *tensor.Sparse3:
		buf.WriteByte(kindSparse3)
		if err := codec.EncodeSparse3(&buf, p); err != nil {
			return nil, err
		}
	case *mat.Matrix:
		buf.WriteByte(kindMatrix)
		if err := codec.EncodeMatrix(&buf, p); err != nil {
			return nil, err
		}
	case projSrc:
		buf.WriteByte(kindProjSrc)
		if err := codec.EncodeMatrix(&buf, p.y2); err != nil {
			return nil, err
		}
		if err := codec.EncodeFloats(&buf, p.lambda); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("distrib: unsupported payload type %T", v)
	}
	return buf.Bytes(), nil
}

// decodePayload parses a kind-tagged state body back into its value and
// reports an approximate in-memory size for the worker store's budget.
func decodePayload(body []byte) (v any, size int64, err error) {
	if len(body) == 0 {
		return nil, 0, fmt.Errorf("distrib: empty payload")
	}
	r := bufio.NewReader(bytes.NewReader(body[1:]))
	switch body[0] {
	case kindSparse3:
		f, err := codec.DecodeSparse3(r)
		if err != nil {
			return nil, 0, err
		}
		return f, int64(len(body)), nil
	case kindMatrix:
		m, err := codec.DecodeMatrix(r)
		if err != nil {
			return nil, 0, err
		}
		return m, int64(len(body)), nil
	case kindProjSrc:
		y2, err := codec.DecodeMatrix(r)
		if err != nil {
			return nil, 0, err
		}
		lambda, err := codec.DecodeFloats(r)
		if err != nil {
			return nil, 0, err
		}
		return projSrc{y2: y2, lambda: lambda}, int64(len(body)), nil
	default:
		return nil, 0, fmt.Errorf("distrib: unknown payload kind %d", body[0])
	}
}

// stateKey is the content address of an encoded payload body.
func stateKey(body []byte) string {
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:])
}

// writeAssignResult streams a Lloyd block result as two concatenated
// frames: the nearest-center indices, then the squared distances.
func writeAssignResult(w io.Writer, idx []int, sq []float64) error {
	if err := codec.EncodeInts(w, idx); err != nil {
		return err
	}
	return codec.EncodeFloats(w, sq)
}

// readAssignResult decodes the two frames of an assign response.
func readAssignResult(r io.Reader) ([]int, []float64, error) {
	br := bufio.NewReader(r)
	idx, err := codec.DecodeInts(br)
	if err != nil {
		return nil, nil, err
	}
	sq, err := codec.DecodeFloats(br)
	if err != nil {
		return nil, nil, err
	}
	return idx, sq, nil
}
