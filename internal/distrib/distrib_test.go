package distrib

import (
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/embed"
	"repro/internal/mat"
	"repro/internal/tensor"
	"repro/internal/tucker"
)

// testRNG is a tiny deterministic generator so fixtures are stable.
type testRNG struct{ state uint64 }

func (r *testRNG) next() float64 {
	r.state ^= r.state << 13
	r.state ^= r.state >> 7
	r.state ^= r.state << 17
	return float64(r.state>>11)/(1<<53) - 0.5
}

func randMatrix(rows, cols int, seed uint64) *mat.Matrix {
	rng := &testRNG{state: seed*0x9e3779b97f4a7c15 + 1}
	m := mat.New(rows, cols)
	for i := range rows {
		row := m.Row(i)
		for j := range row {
			row[j] = rng.next()
		}
	}
	return m
}

func randTensor(i1, i2, i3, nnz int, seed uint64) *tensor.Sparse3 {
	rng := &testRNG{state: seed*0xbf58476d1ce4e5b9 + 1}
	f := tensor.NewSparse3(i1, i2, i3)
	for range nnz {
		i := int((rng.next() + 0.5) * float64(i1))
		j := int((rng.next() + 0.5) * float64(i2))
		k := int((rng.next() + 0.5) * float64(i3))
		if i >= i1 {
			i = i1 - 1
		}
		if j >= i2 {
			j = i2 - 1
		}
		if k >= i3 {
			k = i3 - 1
		}
		f.Append(i, j, k, rng.next()*3)
	}
	f.Build()
	return f
}

func bitEqual(t *testing.T, got, want *mat.Matrix, label string) {
	t.Helper()
	gr, gc := got.Dims()
	wr, wc := want.Dims()
	if gr != wr || gc != wc {
		t.Fatalf("%s: dims %d×%d, want %d×%d", label, gr, gc, wr, wc)
	}
	g, w := got.Data(), want.Data()
	for i := range g {
		if math.Float64bits(g[i]) != math.Float64bits(w[i]) {
			t.Fatalf("%s: element %d differs: %v vs %v", label, i, g[i], w[i])
		}
	}
}

// startWorkers launches n worker processes on httptest servers and a
// coordinator over them.
func startWorkers(t *testing.T, n int, opts Options) (*Coordinator, []*httptest.Server) {
	t.Helper()
	servers := make([]*httptest.Server, n)
	endpoints := make([]string, n)
	for i := range servers {
		servers[i] = httptest.NewServer(NewWorker(WorkerOptions{}).Handler())
		t.Cleanup(servers[i].Close)
		endpoints[i] = servers[i].URL
	}
	c, err := NewCoordinator(endpoints, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c, servers
}

func TestNewCoordinatorRejectsEmpty(t *testing.T) {
	if _, err := NewCoordinator(nil, Options{}); err == nil {
		t.Fatal("no endpoints must be rejected")
	}
	if _, err := NewCoordinator([]string{" ", ""}, Options{}); err == nil {
		t.Fatal("blank endpoints must be rejected")
	}
}

func TestUnfoldParityAcrossWorkerCounts(t *testing.T) {
	f := randTensor(12, 10, 8, 90, 7)
	y1 := randMatrix(12, 3, 1)
	y2 := randMatrix(10, 4, 2)
	y3 := randMatrix(8, 2, 3)
	factors := [4][2]*mat.Matrix{{}, {y2, y3}, {y1, y3}, {y1, y2}}

	for _, workers := range []int{1, 2, 3} {
		c, _ := startWorkers(t, workers, Options{Timeout: 10 * time.Second})
		for mode := 1; mode <= 3; mode++ {
			ya, yb := factors[mode][0], factors[mode][1]
			want := tensor.ProjectedUnfoldSharded(f, mode, ya, yb, 1, 1)
			for _, shards := range []int{1, 2, 5} {
				got, err := c.Unfold(context.Background(), f, mode, ya, yb, 1, shards)
				if err != nil {
					t.Fatal(err)
				}
				bitEqual(t, got, want, "unfold")
			}
		}
	}
}

func TestProjectEmbeddingParity(t *testing.T) {
	d := &tucker.Decomposition{Y2: randMatrix(17, 5, 9)}
	d.Lambda[1] = []float64{3.5, 2.25, 1.125} // shorter than k₂: trailing columns zero

	want := embed.FromDecompositionSharded(d, 3).Matrix()
	for _, workers := range []int{1, 2, 3} {
		c, _ := startWorkers(t, workers, Options{Timeout: 10 * time.Second})
		got, err := c.ProjectEmbedding(context.Background(), d, 4)
		if err != nil {
			t.Fatal(err)
		}
		bitEqual(t, got, want, "project")
	}
}

func TestAssignBlockParity(t *testing.T) {
	points := randMatrix(23, 4, 11)
	centers := randMatrix(5, 4, 12)
	wantIdx, wantSq := cluster.ScanBlock(points, centers, 3, 19)

	c, _ := startWorkers(t, 2, Options{Timeout: 10 * time.Second})
	idx, sq, err := c.AssignBlock(context.Background(), points, centers, 3, 19)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantIdx {
		if idx[i] != wantIdx[i] {
			t.Fatalf("assign index %d: %d vs %d", i, idx[i], wantIdx[i])
		}
		if math.Float64bits(sq[i]) != math.Float64bits(wantSq[i]) {
			t.Fatalf("assign distance %d: %v vs %v", i, sq[i], wantSq[i])
		}
	}
}

// TestWorkerKilledMidSweepReassigns kills one of two workers after it
// has served a couple of blocks; the coordinator must reassign its
// remaining blocks to the survivor and still produce the bit-identical
// unfolding.
func TestWorkerKilledMidSweepReassigns(t *testing.T) {
	f := randTensor(24, 10, 8, 120, 21)
	y2 := randMatrix(10, 4, 2)
	y3 := randMatrix(8, 2, 3)
	want := tensor.ProjectedUnfoldSharded(f, 1, y2, y3, 1, 1)

	healthy := httptest.NewServer(NewWorker(WorkerOptions{}).Handler())
	defer healthy.Close()

	var execs atomic.Int64
	var dead atomic.Bool
	flaky := NewWorker(WorkerOptions{})
	flakySrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if dead.Load() {
			http.Error(w, "killed", http.StatusServiceUnavailable)
			return
		}
		if r.URL.Path == "/v1/exec" && execs.Add(1) > 2 {
			dead.Store(true)
			http.Error(w, "killed", http.StatusServiceUnavailable)
			return
		}
		flaky.Handler().ServeHTTP(w, r)
	}))
	defer flakySrv.Close()

	c, err := NewCoordinator([]string{healthy.URL, flakySrv.URL}, Options{
		Timeout: 5 * time.Second, Retries: 1, Backoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Unfold(context.Background(), f, 1, y2, y3, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	bitEqual(t, got, want, "unfold after worker death")
	if !dead.Load() {
		t.Fatal("flaky worker was never exercised")
	}
}

// TestWorkerRestartRecoversViaRepush simulates a worker that restarts
// empty between two sweeps: the coordinator believes its state is
// pushed, gets 409 + X-Missing-State, re-pushes, and the second sweep
// still succeeds remotely.
func TestWorkerRestartRecoversViaRepush(t *testing.T) {
	f := randTensor(15, 9, 7, 70, 31)
	y2 := randMatrix(9, 3, 4)
	y3 := randMatrix(7, 2, 5)
	want := tensor.ProjectedUnfoldSharded(f, 1, y2, y3, 1, 1)

	var current atomic.Pointer[Worker]
	current.Store(NewWorker(WorkerOptions{}))
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		current.Load().Handler().ServeHTTP(w, r)
	}))
	defer srv.Close()

	c, err := NewCoordinator([]string{srv.URL}, Options{
		Timeout: 5 * time.Second, Retries: 2, Backoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	got, err := c.Unfold(ctx, f, 1, y2, y3, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	bitEqual(t, got, want, "first sweep")

	// "Restart" the worker with an empty store.
	current.Store(NewWorker(WorkerOptions{}))

	got, err = c.Unfold(ctx, f, 1, y2, y3, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	bitEqual(t, got, want, "sweep after restart")
	if current.Load().StateCount() == 0 {
		t.Fatal("restarted worker never received re-pushed state")
	}
}

// TestSlowWorkerFallsBackLocally exercises the per-request timeout: a
// worker that hangs past the deadline is demoted and its blocks are
// computed locally, so the build still finishes with the exact result.
func TestSlowWorkerFallsBackLocally(t *testing.T) {
	f := randTensor(10, 8, 6, 50, 41)
	y2 := randMatrix(8, 3, 6)
	y3 := randMatrix(6, 2, 7)
	want := tensor.ProjectedUnfoldSharded(f, 1, y2, y3, 1, 1)

	stall := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-stall
	}))
	// Unblock the stalled handlers before Close waits on them.
	defer srv.Close()
	defer close(stall)

	c, err := NewCoordinator([]string{srv.URL}, Options{
		Timeout: 50 * time.Millisecond, Retries: 0, Backoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Unfold(context.Background(), f, 1, y2, y3, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	bitEqual(t, got, want, "unfold with hung worker")
}

func TestPingReportsHealth(t *testing.T) {
	c, servers := startWorkers(t, 2, Options{Timeout: 2 * time.Second})
	n, err := c.Ping(context.Background())
	if err != nil || n != 2 {
		t.Fatalf("ping = %d, %v; want 2 healthy", n, err)
	}
	servers[0].Close()
	servers[1].Close()
	if _, err := c.Ping(context.Background()); err == nil {
		t.Fatal("ping with every worker down must error")
	}
}
