package distrib

import (
	"container/list"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"repro/internal/cluster"
	"repro/internal/codec"
	"repro/internal/embed"
	"repro/internal/httpx"
	"repro/internal/mat"
	"repro/internal/tensor"
)

// WorkerOptions configures a Worker.
type WorkerOptions struct {
	// MaxStateBytes bounds the decoded-payload store; pushing past the
	// budget evicts least-recently-used payloads (the coordinator
	// re-pushes on demand). Zero means 1 GiB.
	MaxStateBytes int64
	// MaxBodyBytes bounds a single request body. Zero means 1 GiB.
	MaxBodyBytes int64
}

func (o WorkerOptions) maxStateBytes() int64 {
	if o.MaxStateBytes <= 0 {
		return 1 << 30
	}
	return o.MaxStateBytes
}

func (o WorkerOptions) maxBodyBytes() int64 {
	if o.MaxBodyBytes <= 0 {
		return 1 << 30
	}
	return o.MaxBodyBytes
}

// Worker executes block computations on behalf of a build coordinator.
// It holds a bounded content-addressed store of decoded payloads and a
// handler implementing the protocol of this package; it is safe for
// concurrent requests.
type Worker struct {
	opts WorkerOptions
	mux  *httpx.Mux

	mu    sync.Mutex
	store map[string]*stateEntry
	lru   *list.List // front = most recently used; values are *stateEntry
	bytes int64
}

// stateEntry is one decoded payload in the worker store.
type stateEntry struct {
	key  string
	v    any
	size int64
	elem *list.Element
}

// NewWorker returns a Worker serving the coordinator protocol.
func NewWorker(opts WorkerOptions) *Worker {
	w := &Worker{
		opts:  opts,
		mux:   httpx.NewMux(),
		store: make(map[string]*stateEntry),
		lru:   list.New(),
	}
	w.mux.HandleFunc("GET /healthz", w.handleHealthz)
	w.mux.HandleFunc("POST /v1/state/{key}", w.handleState)
	w.mux.HandleFunc("POST /v1/exec", w.handleExec)
	return w
}

// Handler returns the worker's HTTP handler.
func (w *Worker) Handler() http.Handler { return w.mux }

func (w *Worker) handleHealthz(rw http.ResponseWriter, r *http.Request) {
	httpx.WriteJSON(rw, http.StatusOK, map[string]string{"status": "ok"})
}

// handleState ingests one content-addressed payload. The key must be the
// SHA-256 of the body — a mismatch means corruption in transit and is
// rejected, so the store only ever holds payloads that decode to exactly
// what the coordinator encoded.
func (w *Worker) handleState(rw http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	body, err := io.ReadAll(http.MaxBytesReader(rw, r.Body, w.opts.maxBodyBytes()))
	if err != nil {
		httpx.WriteBodyError(rw, err)
		return
	}
	if got := stateKey(body); got != key {
		httpx.WriteError(rw, http.StatusBadRequest, "payload hash %s does not match key %s", got, key)
		return
	}
	v, size, err := decodePayload(body)
	if err != nil {
		httpx.WriteError(rw, http.StatusBadRequest, "bad payload: %v", err)
		return
	}
	w.put(key, v, size)
	httpx.WriteJSON(rw, http.StatusOK, map[string]string{"status": "stored", "key": key})
}

// handleExec runs one block computation against stored payloads and
// streams the binary result. Missing payloads yield 409 with the keys in
// X-Missing-State so the coordinator can re-push and retry.
func (w *Worker) handleExec(rw http.ResponseWriter, r *http.Request) {
	var req execRequest
	body := http.MaxBytesReader(rw, r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		httpx.WriteBodyError(rw, err)
		return
	}
	roles, err := rolesFor(req.Op)
	if err != nil {
		httpx.WriteError(rw, http.StatusBadRequest, "%v", err)
		return
	}
	states := make(map[string]any, len(roles))
	var missing []string
	for _, role := range roles {
		key, ok := req.States[role]
		if !ok || key == "" {
			httpx.WriteError(rw, http.StatusBadRequest, "op %s requires state %q", req.Op, role)
			return
		}
		if v, ok := w.get(key); ok {
			states[role] = v
		} else {
			missing = append(missing, key)
		}
	}
	if len(missing) > 0 {
		rw.Header().Set(missingStateHeader, strings.Join(missing, ","))
		httpx.WriteError(rw, http.StatusConflict, "missing state: %s", strings.Join(missing, ", "))
		return
	}

	res, err := w.exec(req, states)
	if err != nil {
		httpx.WriteError(rw, http.StatusBadRequest, "%v", err)
		return
	}
	rw.Header().Set("Content-Type", "application/octet-stream")
	rw.WriteHeader(http.StatusOK)
	_ = res(rw) // the status line is already on the wire
}

// rolesFor lists the state roles an op dereferences.
func rolesFor(op string) ([]string, error) {
	switch op {
	case opUnfold:
		return []string{roleTensor, roleYA, roleYB}, nil
	case opProject:
		return []string{roleProj}, nil
	case opAssign:
		return []string{rolePoints, roleCenters}, nil
	default:
		return nil, fmt.Errorf("unknown op %q", op)
	}
}

// exec validates and runs one block computation, returning a writer for
// its binary result. Every computation is exactly the in-process block
// form — the bit-identity contract of the protocol.
func (w *Worker) exec(req execRequest, states map[string]any) (func(io.Writer) error, error) {
	if req.Lo < 0 || req.Hi < req.Lo {
		return nil, fmt.Errorf("bad block [%d,%d)", req.Lo, req.Hi)
	}
	switch req.Op {
	case opUnfold:
		f, ok := states[roleTensor].(*tensor.Sparse3)
		if !ok {
			return nil, fmt.Errorf("state %q is not a tensor", roleTensor)
		}
		ya, ok := states[roleYA].(*mat.Matrix)
		if !ok {
			return nil, fmt.Errorf("state %q is not a matrix", roleYA)
		}
		yb, ok := states[roleYB].(*mat.Matrix)
		if !ok {
			return nil, fmt.Errorf("state %q is not a matrix", roleYB)
		}
		if req.Mode < 1 || req.Mode > 3 {
			return nil, fmt.Errorf("bad mode %d", req.Mode)
		}
		i1, i2, i3 := f.Dims()
		rows := [4]int{0, i1, i2, i3}[req.Mode]
		if req.Hi > rows {
			return nil, fmt.Errorf("block [%d,%d) out of range [0,%d)", req.Lo, req.Hi, rows)
		}
		block := tensor.ProjectedUnfoldBlock(f, req.Mode, ya, yb, req.Lo, req.Hi, req.Workers)
		return func(out io.Writer) error { return codec.EncodeMatrix(out, block) }, nil

	case opProject:
		src, ok := states[roleProj].(projSrc)
		if !ok {
			return nil, fmt.Errorf("state %q is not a projection source", roleProj)
		}
		if req.Hi > src.y2.Rows() {
			return nil, fmt.Errorf("block [%d,%d) out of range [0,%d)", req.Lo, req.Hi, src.y2.Rows())
		}
		block := embed.ProjectRowsBlock(src.y2, src.lambda, req.Lo, req.Hi)
		return func(out io.Writer) error { return codec.EncodeMatrix(out, block) }, nil

	case opAssign:
		points, ok := states[rolePoints].(*mat.Matrix)
		if !ok {
			return nil, fmt.Errorf("state %q is not a matrix", rolePoints)
		}
		centers, ok := states[roleCenters].(*mat.Matrix)
		if !ok {
			return nil, fmt.Errorf("state %q is not a matrix", roleCenters)
		}
		if req.Hi > points.Rows() {
			return nil, fmt.Errorf("block [%d,%d) out of range [0,%d)", req.Lo, req.Hi, points.Rows())
		}
		if points.Cols() != centers.Cols() {
			return nil, fmt.Errorf("points have %d columns, centers %d", points.Cols(), centers.Cols())
		}
		idx, sq := cluster.ScanBlock(points, centers, req.Lo, req.Hi)
		return func(out io.Writer) error { return writeAssignResult(out, idx, sq) }, nil
	}
	return nil, fmt.Errorf("unknown op %q", req.Op)
}

// put stores a decoded payload, evicting least-recently-used entries
// past the byte budget. A payload larger than the whole budget is still
// stored (alone) — refusing it would deadlock the build it serves.
func (w *Worker) put(key string, v any, size int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if e, ok := w.store[key]; ok {
		w.lru.MoveToFront(e.elem)
		return
	}
	e := &stateEntry{key: key, v: v, size: size}
	e.elem = w.lru.PushFront(e)
	w.store[key] = e
	w.bytes += size
	for w.bytes > w.opts.maxStateBytes() && w.lru.Len() > 1 {
		oldest := w.lru.Back().Value.(*stateEntry)
		w.lru.Remove(oldest.elem)
		delete(w.store, oldest.key)
		w.bytes -= oldest.size
	}
}

// get fetches a payload and marks it recently used.
func (w *Worker) get(key string) (any, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	e, ok := w.store[key]
	if !ok {
		return nil, false
	}
	w.lru.MoveToFront(e.elem)
	return e.v, true
}

// StateCount reports how many payloads the store currently holds
// (diagnostics and tests).
func (w *Worker) StateCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.store)
}
