package distrib

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/codec"
	"repro/internal/embed"
	"repro/internal/mat"
	"repro/internal/shard"
	"repro/internal/tensor"
	"repro/internal/tucker"
)

// Options configures a Coordinator's robustness envelope.
type Options struct {
	// Timeout bounds each HTTP request (push, exec, health probe). Zero
	// means 60 s.
	Timeout time.Duration
	// Retries is how many times a failed request to one worker is retried
	// before the block moves to the next worker. Zero means 2; negative
	// disables retries.
	Retries int
	// Backoff is the base delay between retries, doubling per attempt.
	// Zero means 100 ms.
	Backoff time.Duration
	// Client overrides the HTTP client (tests inject httptest clients).
	Client *http.Client
}

func (o Options) timeout() time.Duration {
	if o.Timeout <= 0 {
		return 60 * time.Second
	}
	return o.Timeout
}

func (o Options) retries() int {
	if o.Retries == 0 {
		return 2
	}
	if o.Retries < 0 {
		return 0
	}
	return o.Retries
}

func (o Options) backoff() time.Duration {
	if o.Backoff <= 0 {
		return 100 * time.Millisecond
	}
	return o.Backoff
}

// remoteWorker is the coordinator's view of one worker process.
type remoteWorker struct {
	url string

	mu      sync.Mutex
	pushed  map[string]bool // state keys this worker is believed to hold
	healthy bool
}

func (w *remoteWorker) hasState(key string) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.pushed[key]
}

func (w *remoteWorker) markState(key string, ok bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if ok {
		w.pushed[key] = true
	} else {
		delete(w.pushed, key)
	}
}

func (w *remoteWorker) isHealthy() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.healthy
}

func (w *remoteWorker) setHealthy(ok bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.healthy = ok
	if !ok {
		// A worker that dropped out may have restarted empty: forget what
		// it was pushed so a comeback re-pushes from scratch (the 409
		// path would also recover, this just skips a round-trip).
		w.pushed = make(map[string]bool)
	}
}

// statePayload is one encoded, content-addressed payload.
type statePayload struct {
	key  string
	body []byte
}

// Coordinator fans build blocks out to worker processes. It implements
// the three remote hooks of the build pipeline (tucker.Unfolder, the
// embedding projection, and the Lloyd assignment scan) with results
// bit-identical to the in-process path; see the package comment for the
// failure model.
type Coordinator struct {
	opts    Options
	workers []*remoteWorker
	client  *http.Client
	rr      atomic.Uint64 // round-robin cursor for single-block ops

	cacheMu  sync.Mutex
	encCache map[any]statePayload
	encOrder []any
}

// encCacheCap bounds the payload-encoding cache. Factor matrices churn
// every sweep, so stale entries dominate quickly; the cache only needs
// to cover the payloads of the stages currently in flight.
const encCacheCap = 32

// NewCoordinator returns a Coordinator over the given worker base URLs
// (for example "http://10.0.0.7:9090"; a missing scheme defaults to
// http). All workers start out presumed healthy; the first failed
// request demotes.
func NewCoordinator(endpoints []string, opts Options) (*Coordinator, error) {
	var ws []*remoteWorker
	for _, ep := range endpoints {
		ep = strings.TrimSpace(ep)
		if ep == "" {
			continue
		}
		if !strings.Contains(ep, "://") {
			ep = "http://" + ep
		}
		ws = append(ws, &remoteWorker{
			url:     strings.TrimRight(ep, "/"),
			pushed:  make(map[string]bool),
			healthy: true,
		})
	}
	if len(ws) == 0 {
		return nil, fmt.Errorf("distrib: no worker endpoints")
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{}
	}
	return &Coordinator{
		opts:     opts,
		workers:  ws,
		client:   client,
		encCache: make(map[any]statePayload),
	}, nil
}

// NumWorkers returns how many workers the coordinator addresses.
func (c *Coordinator) NumWorkers() int { return len(c.workers) }

// Ping health-checks every worker, marking each healthy or not, and
// returns the number that answered. An error means none did.
func (c *Coordinator) Ping(ctx context.Context) (int, error) {
	var healthy int
	var firstErr error
	for _, w := range c.workers {
		if err := c.ping(ctx, w); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("distrib: worker %s: %w", w.url, err)
			}
			continue
		}
		healthy++
	}
	if healthy == 0 {
		return 0, firstErr
	}
	return healthy, nil
}

func (c *Coordinator) ping(ctx context.Context, w *remoteWorker) error {
	rctx, cancel := context.WithTimeout(ctx, c.opts.timeout())
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, w.url+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		w.setHealthy(false)
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		w.setHealthy(false)
		return fmt.Errorf("healthz status %d", resp.StatusCode)
	}
	w.setHealthy(true)
	return nil
}

// Unfold implements tucker.Unfolder: the projected mode-n unfolding with
// its row blocks computed on remote workers and stitched in global row
// order. Blocks a worker cannot produce fall back to the in-process
// computation, so the result (bit-identical either way) is returned for
// every failure short of context cancellation.
func (c *Coordinator) Unfold(ctx context.Context, f *tensor.Sparse3, mode int, ya, yb *mat.Matrix, workers, shards int) (*mat.Matrix, error) {
	i1, i2, i3 := f.Dims()
	var rows int
	switch mode {
	case 1:
		rows = i1
	case 2:
		rows = i2
	case 3:
		rows = i3
	default:
		return nil, fmt.Errorf("distrib: invalid mode %d", mode)
	}
	out := mat.New(rows, ya.Cols()*yb.Cols())

	ft, err := c.encoded(f)
	if err != nil {
		return nil, err
	}
	pa, err := c.encoded(ya)
	if err != nil {
		return nil, err
	}
	pb, err := c.encoded(yb)
	if err != nil {
		return nil, err
	}
	states := map[string]statePayload{roleTensor: ft, roleYA: pa, roleYB: pb}

	c.forEachBlock(ctx, shard.Plan(rows, shards), func(b int, r shard.Range) {
		req := execRequest{Op: opUnfold, Mode: mode, Lo: r.Lo, Hi: r.Hi, Workers: workers}
		block := c.matrixBlock(ctx, b, req, states, r.Hi-r.Lo, out.Cols(), func() *mat.Matrix {
			return tensor.ProjectedUnfoldBlock(f, mode, ya, yb, r.Lo, r.Hi, workers)
		})
		stitchRows(out, block, r.Lo)
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ProjectEmbedding computes the Theorem 2 embedding E = Λ₂·Y⁽²⁾ with its
// row blocks computed on remote workers, bit-identical to
// embed.FromDecompositionSharded at any worker count.
func (c *Coordinator) ProjectEmbedding(ctx context.Context, d *tucker.Decomposition, shards int) (*mat.Matrix, error) {
	rows, cols := d.Y2.Dims()
	out := mat.New(rows, cols)
	src := projSrc{y2: d.Y2, lambda: d.Lambda[1]}
	ps, err := c.encoded(src)
	if err != nil {
		return nil, err
	}
	states := map[string]statePayload{roleProj: ps}

	c.forEachBlock(ctx, shard.Plan(rows, shards), func(b int, r shard.Range) {
		req := execRequest{Op: opProject, Lo: r.Lo, Hi: r.Hi}
		block := c.matrixBlock(ctx, b, req, states, r.Hi-r.Lo, cols, func() *mat.Matrix {
			return embed.ProjectRowsBlock(d.Y2, d.Lambda[1], r.Lo, r.Hi)
		})
		stitchRows(out, block, r.Lo)
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// AssignBlock computes one Lloyd assignment block on a remote worker.
// Unlike Unfold and ProjectEmbedding it returns remote failures as
// errors: the k-means loop already falls back to the bit-identical local
// scan, and it owns the fan-out across blocks.
func (c *Coordinator) AssignBlock(ctx context.Context, points, centers *mat.Matrix, lo, hi int) ([]int, []float64, error) {
	pp, err := c.encoded(points)
	if err != nil {
		return nil, nil, err
	}
	pc, err := c.encoded(centers)
	if err != nil {
		return nil, nil, err
	}
	states := map[string]statePayload{rolePoints: pp, roleCenters: pc}
	req := execRequest{Op: opAssign, Lo: lo, Hi: hi}
	body, err := c.runBlock(ctx, int(c.rr.Add(1)), req, states)
	if err != nil {
		return nil, nil, err
	}
	idx, sq, err := readAssignResult(bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	if len(idx) != hi-lo || len(sq) != hi-lo {
		return nil, nil, fmt.Errorf("distrib: assign block [%d,%d): got %d/%d results", lo, hi, len(idx), len(sq))
	}
	return idx, sq, nil
}

// forEachBlock runs fn for every block of plan, concurrently when there
// is more than one. fn must write disjoint outputs (blocks do).
func (c *Coordinator) forEachBlock(ctx context.Context, plan []shard.Range, fn func(b int, r shard.Range)) {
	if len(plan) == 1 {
		fn(0, plan[0])
		return
	}
	var wg sync.WaitGroup
	for b, r := range plan {
		wg.Add(1)
		go func(b int, r shard.Range) {
			defer wg.Done()
			fn(b, r)
		}(b, r)
	}
	wg.Wait()
}

// matrixBlock fetches one matrix-valued block from the workers, falling
// back to the local computation when every remote attempt fails or the
// response does not decode to the expected shape.
func (c *Coordinator) matrixBlock(ctx context.Context, b int, req execRequest, states map[string]statePayload, wantRows, wantCols int, local func() *mat.Matrix) *mat.Matrix {
	body, err := c.runBlock(ctx, b, req, states)
	if err == nil {
		block, derr := codec.DecodeMatrix(bytes.NewReader(body))
		if derr == nil {
			if r, cc := block.Dims(); r == wantRows && cc == wantCols {
				return block
			}
		}
	}
	if ctx.Err() != nil {
		// The caller surfaces the cancellation; the zero block is never
		// observed.
		return mat.New(wantRows, wantCols)
	}
	return local()
}

// stitchRows copies a standalone block into rows [lo, lo+block.Rows())
// of dst — the deterministic global-row-order reduction.
func stitchRows(dst, block *mat.Matrix, lo int) {
	for r := range block.Rows() {
		copy(dst.Row(lo+r), block.Row(r))
	}
}

// runBlock executes one block request against the worker fleet: it
// starts at the block's assigned worker (block index modulo the healthy
// fleet, so a sweep's blocks spread evenly), retries each worker with
// backoff, demotes workers that keep failing, and moves the block to
// the next survivor — the reassignment path a killed worker exercises.
// It returns the raw response body, or an error once every candidate is
// exhausted.
func (c *Coordinator) runBlock(ctx context.Context, b int, req execRequest, states map[string]statePayload) ([]byte, error) {
	order := c.healthyWorkers(ctx)
	if len(order) == 0 {
		return nil, fmt.Errorf("distrib: no healthy workers")
	}
	start := b % len(order)
	var lastErr error
	for i := range len(order) {
		w := order[(start+i)%len(order)]
		body, err := c.tryWorker(ctx, w, req, states)
		if err == nil {
			return body, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		w.setHealthy(false)
	}
	return nil, fmt.Errorf("distrib: all workers failed: %w", lastErr)
}

// healthyWorkers snapshots the healthy fleet; when it is empty, every
// worker is re-probed once (a restarted worker rejoins here) before
// giving up.
func (c *Coordinator) healthyWorkers(ctx context.Context) []*remoteWorker {
	snapshot := func() []*remoteWorker {
		var out []*remoteWorker
		for _, w := range c.workers {
			if w.isHealthy() {
				out = append(out, w)
			}
		}
		return out
	}
	if ws := snapshot(); len(ws) > 0 {
		return ws
	}
	for _, w := range c.workers {
		_ = c.ping(ctx, w)
	}
	return snapshot()
}

// tryWorker runs one block request against one worker, with bounded
// retries, exponential backoff, push-on-demand of missing state, and a
// per-request timeout.
func (c *Coordinator) tryWorker(ctx context.Context, w *remoteWorker, req execRequest, states map[string]statePayload) ([]byte, error) {
	keys := make(map[string]string, len(states))
	for role, p := range states {
		keys[role] = p.key
	}
	req.States = keys

	attempts := 1 + c.opts.retries()
	var lastErr error
	for a := range attempts {
		if a > 0 {
			backoff := c.opts.backoff() << (a - 1)
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		if err := c.pushStates(ctx, w, states); err != nil {
			lastErr = err
			continue
		}
		body, missing, err := c.exec(ctx, w, req)
		if err == nil {
			return body, nil
		}
		lastErr = err
		if len(missing) > 0 {
			// The worker lost state (restart or eviction): forget the keys
			// so the next attempt re-pushes them. Not a worker failure.
			for _, k := range missing {
				w.markState(k, false)
			}
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	return nil, lastErr
}

// pushStates uploads any payloads the worker is not known to hold.
func (c *Coordinator) pushStates(ctx context.Context, w *remoteWorker, states map[string]statePayload) error {
	for _, p := range states {
		if w.hasState(p.key) {
			continue
		}
		if err := c.pushState(ctx, w, p); err != nil {
			return err
		}
		w.markState(p.key, true)
	}
	return nil
}

func (c *Coordinator) pushState(ctx context.Context, w *remoteWorker, p statePayload) error {
	rctx, cancel := context.WithTimeout(ctx, c.opts.timeout())
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, w.url+"/v1/state/"+p.key, bytes.NewReader(p.body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("push %s: status %d", p.key[:12], resp.StatusCode)
	}
	return nil
}

// exec posts one exec request. A 409 returns the missing state keys so
// the caller can re-push and retry.
func (c *Coordinator) exec(ctx context.Context, w *remoteWorker, req execRequest) (body []byte, missing []string, err error) {
	payload, err := jsonBody(req)
	if err != nil {
		return nil, nil, err
	}
	rctx, cancel := context.WithTimeout(ctx, c.opts.timeout())
	defer cancel()
	hreq, err := http.NewRequestWithContext(rctx, http.MethodPost, w.url+"/v1/exec", bytes.NewReader(payload))
	if err != nil {
		return nil, nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(hreq)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusConflict {
		io.Copy(io.Discard, resp.Body)
		if h := resp.Header.Get(missingStateHeader); h != "" {
			missing = strings.Split(h, ",")
		}
		return nil, missing, fmt.Errorf("worker missing state")
	}
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, nil, fmt.Errorf("exec status %d", resp.StatusCode)
	}
	body, err = io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	return body, nil, nil
}

// encoded returns the content-addressed payload for a state value,
// caching by identity: the tensor and each factor matrix are encoded
// once per value even though every block request references them.
func (c *Coordinator) encoded(v any) (statePayload, error) {
	key := cacheKeyOf(v)
	c.cacheMu.Lock()
	if p, ok := c.encCache[key]; ok {
		c.cacheMu.Unlock()
		return p, nil
	}
	c.cacheMu.Unlock()

	body, err := encodePayload(v)
	if err != nil {
		return statePayload{}, err
	}
	p := statePayload{key: stateKey(body), body: body}

	c.cacheMu.Lock()
	defer c.cacheMu.Unlock()
	if existing, ok := c.encCache[key]; ok {
		return existing, nil
	}
	c.encCache[key] = p
	c.encOrder = append(c.encOrder, key)
	for len(c.encOrder) > encCacheCap {
		oldest := c.encOrder[0]
		c.encOrder = c.encOrder[1:]
		delete(c.encCache, oldest)
	}
	return p, nil
}

// projCacheKey keys projSrc payloads by the identity of their factor
// matrix; the distinct type keeps them from colliding with the same
// matrix pushed as a plain matrix payload.
type projCacheKey struct{ y2 *mat.Matrix }

// cacheKeyOf maps a state value to a comparable identity for the
// encoding cache (projSrc itself holds a slice and cannot be a map key).
func cacheKeyOf(v any) any {
	if p, ok := v.(projSrc); ok {
		return projCacheKey{y2: p.y2}
	}
	return v
}

func jsonBody(req execRequest) ([]byte, error) {
	return json.Marshal(req)
}
