// Package cubelsi is the public API of the CubeLSI reproduction
// (Bi, Lee, Kao, Cheng: "CubeLSI: An Effective and Efficient Method for
// Searching Resources in Social Tagging Systems", ICDE 2011).
//
// # Offline pipeline
//
// An Engine ingests (user, tag, resource) assignments and runs the
// offline pipeline of the paper's Figure 1: data cleaning, third-order
// tensor construction, truncated Tucker decomposition by alternating
// least squares, purified pairwise tag distances via the Theorem 1/2
// shortcuts (the dense purified tensor is never materialized), and
// concept distillation by k-means over the Theorem 2 tag embedding
// E = Λ₂·Y⁽²⁾. Online queries are then answered by cosine similarity in
// the bag-of-concepts vector space.
//
// The offline build is context-aware and reports per-stage progress:
//
//	eng, err := cubelsi.Build(ctx, cubelsi.FromTSV(f),
//		cubelsi.WithConfig(cfg),
//		cubelsi.WithProgress(func(p cubelsi.Progress) {
//			log.Printf("%s done=%v %v", p.Stage, p.Done, p.Elapsed)
//		}))
//
// Builds scale out in two orthogonal directions: WithTuckerParallelism
// bounds the ALS worker pool, WithShards partitions the tag-row stages
// into contiguous row blocks, and WithRemoteWorkers ships those blocks
// to cubelsiworker processes — none of which changes the output
// (factors, partitions and rankings are bit-identical at any worker,
// shard or fleet size).
//
// # Models
//
// Built engines serialize, so offline build and online serving are
// separate processes (cmd/cubelsi -save, cmd/cubelsiserve -model):
//
//	err = eng.Save(w)
//	eng, err = cubelsi.Load(r)
//
// The current format (v4) is aligned and offset-indexed so a model
// file can be memory-mapped and served zero-copy — LoadMapped (or
// LoadFile with WithMapped) opens a multi-gigabyte model in
// milliseconds — and can carry optional int8/float16 quantized
// embedding views for ANN candidate generation (WithInt8Embedding,
// WithFloat16Embedding). Engines derived with WithANN answer
// RelatedTags through an inverted-file index over the concept
// centroids instead of the exact scan. All older formats (v1–v3) still
// load through the same calls.
//
// # Queries
//
// Queries are values with composable options, and batches amortize
// multi-query serving:
//
//	results := eng.Query(cubelsi.NewQuery([]string{"jazz", "saxophone"},
//		cubelsi.WithLimit(10), cubelsi.WithMinScore(0.05)))
//	batches, err := eng.SearchBatch(queries)
//
// # Incremental lifecycle
//
// Growing corpora use the incremental lifecycle instead of one-shot
// Build: an Index owns the assignment log and publishes immutable,
// versioned Engine snapshots. Apply folds an assignment delta in — the
// ALS decomposition warm-starts from the previous factor matrices and
// only tags whose embedding rows moved are re-clustered — and swaps the
// new snapshot in atomically under live queries:
//
//	idx, err := cubelsi.NewIndex(ctx, cubelsi.FromTSVFile("corpus.tsv"))
//	report, err := idx.Apply(ctx, cubelsi.Delta{Add: newAssignments})
//	eng := idx.Snapshot() // immutable; eng.Version() increments per Apply
//
// # Streaming ingestion
//
// When deltas arrive as a continuous stream rather than batched calls,
// an Ingestor fronts the Index: records are offered one at a time,
// compacted in place (an add and a remove of the same triple cancel),
// deduplicated against per-client sequence numbers, and micro-batched
// into Apply under a flush policy — every N records, every T of wall
// clock, or when the estimated embedding drift of the pending batch
// crosses a threshold, whichever fires first. A bounded queue gives
// producers backpressure instead of unbounded memory:
//
//	ing, err := cubelsi.NewIngestor(idx,
//		cubelsi.WithFlushEvery(256),
//		cubelsi.WithFlushInterval(2*time.Second),
//		cubelsi.WithFlushDrift(0.05))
//	status, err := ing.Offer(cubelsi.StreamRecord{
//		User: "u9", Tag: "jazz", Resource: "r3", Client: "feed", Seq: 17})
//	err = ing.Flush(ctx) // synchronous: returns once the batch serves
//
// cmd/cubelsiserve exposes the Ingestor as POST /stream (NDJSON, with
// an optional long-lived firehose mode), and its replication plane
// (internal/replicate) distributes each published snapshot to read-only
// replicas — SHA-256-verified, monotonically versioned. See
// docs/OPERATIONS.md for the operator's view of the whole fleet.
package cubelsi
