package cubelsi

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"
)

func buildCorpus(t *testing.T, opts ...BuildOption) *Engine {
	t.Helper()
	if len(opts) == 0 {
		opts = []BuildOption{WithConfig(testConfig())}
	}
	eng, err := Build(context.Background(), FromAssignments(corpus()), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestBuildWithProgress(t *testing.T) {
	var events []Progress
	eng, err := Build(context.Background(), FromAssignments(corpus()),
		WithConfig(testConfig()),
		WithProgress(func(p Progress) { events = append(events, p) }))
	if err != nil {
		t.Fatal(err)
	}
	if eng.Stats().Concepts != 2 {
		t.Fatalf("stats = %+v", eng.Stats())
	}
	wantStages := []Stage{StageTensor, StageDecompose, StageDistances, StageCluster, StageIndex}
	if len(events) != 2*len(wantStages) {
		t.Fatalf("got %d progress events, want %d: %v", len(events), 2*len(wantStages), events)
	}
	for i, s := range wantStages {
		start, done := events[2*i], events[2*i+1]
		if start.Stage != s || start.Done {
			t.Fatalf("event %d = %+v, want start of %v", 2*i, start, s)
		}
		if done.Stage != s || !done.Done {
			t.Fatalf("event %d = %+v, want finish of %v", 2*i+1, done, s)
		}
	}
	if eng.Timings().Total() <= 0 {
		t.Fatalf("timings = %+v", eng.Timings())
	}
}

func TestBuildCancellationNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Build(ctx, FromAssignments(corpus()), WithConfig(testConfig())); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	// Cancel mid-ALS: the decompose stage's own context checks abort it.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	_, err := Build(ctx2, FromAssignments(corpus()),
		WithConfig(testConfig()),
		WithProgress(func(p Progress) {
			if p.Stage == StageDecompose && !p.Done {
				cancel2()
			}
		}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-ALS err = %v, want context.Canceled", err)
	}

	// The build pipeline is single-goroutine; cancellation must not
	// strand anything. Allow the runtime a moment to settle.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

func TestSaveLoadRoundtripIdenticalRankings(t *testing.T) {
	eng := buildCorpus(t)
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if restored.Stats() != eng.Stats() {
		t.Fatalf("stats changed: %+v vs %+v", restored.Stats(), eng.Stats())
	}

	queries := [][]string{{"mp3"}, {"audio", "songs"}, {"golang"}, {"code", "compiler"}, {"nosuchtag"}}
	for _, q := range queries {
		a := eng.Query(NewQuery(q))
		b := restored.Query(NewQuery(q))
		if len(a) != len(b) {
			t.Fatalf("query %v: %d vs %d results", q, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				// Result holds a float64 score; struct equality means the
				// ranking round-tripped bit-for-bit.
				t.Fatalf("query %v result %d: %+v vs %+v", q, i, a[i], b[i])
			}
		}
	}

	// Distances, clusters, and vocabulary survive too.
	d1, err := eng.Distance("audio", "mp3")
	if err != nil {
		t.Fatal(err)
	}
	d2, err := restored.Distance("audio", "mp3")
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("distance changed: %v vs %v", d1, d2)
	}
	if len(restored.Tags()) != len(eng.Tags()) {
		t.Fatal("tag vocabulary changed")
	}
	ca, cb := eng.Clusters(), restored.Clusters()
	if len(ca) != len(cb) {
		t.Fatalf("cluster count changed: %d vs %d", len(ca), len(cb))
	}
	for i := range ca {
		if strings.Join(ca[i], ",") != strings.Join(cb[i], ",") {
			t.Fatalf("cluster %d changed: %v vs %v", i, ca[i], cb[i])
		}
	}

	// Case folding must survive the roundtrip (Lowercase flag).
	if !restored.HasTag("AUDIO") {
		t.Fatal("restored engine lost case folding")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a model")); err == nil {
		t.Fatal("want error for garbage input")
	}
	if _, err := Load(strings.NewReader("")); err == nil {
		t.Fatal("want error for empty input")
	}
}

func TestSearchBatchMatchesSingleQueries(t *testing.T) {
	eng := buildCorpus(t)
	queries := []Query{
		NewQuery([]string{"mp3"}),
		NewQuery([]string{"audio"}, WithLimit(2)),
		NewQuery([]string{"code"}, WithMinScore(0.5)),
		NewQuery([]string{"nosuchtag"}),
		NewQuery([]string{"golang", "compiler"}, WithLimit(3)),
		NewQuery(nil, WithConcepts(0)),
	}
	batch, err := eng.SearchBatch(queries)
	if err != nil {
		t.Fatalf("SearchBatch: %v", err)
	}
	if len(batch) != len(queries) {
		t.Fatalf("batch has %d entries for %d queries", len(batch), len(queries))
	}
	for i, q := range queries {
		single := eng.Query(q)
		if len(batch[i]) != len(single) {
			t.Fatalf("query %d: batch %d results, single %d", i, len(batch[i]), len(single))
		}
		for j := range single {
			if batch[i][j] != single[j] {
				t.Fatalf("query %d result %d: batch %+v, single %+v", i, j, batch[i][j], single[j])
			}
		}
	}
	if out, err := eng.SearchBatch(nil); err != nil || len(out) != 0 {
		t.Fatalf("empty batch returned %v, %v", out, err)
	}
}

func TestQueryOptions(t *testing.T) {
	eng := buildCorpus(t)

	all := eng.Query(NewQuery([]string{"audio"}))
	if len(all) == 0 {
		t.Fatal("no results")
	}
	if got := eng.Query(NewQuery([]string{"audio"}, WithLimit(2))); len(got) != 2 {
		t.Fatalf("WithLimit(2) returned %d results", len(got))
	}

	// MinScore above the best score filters everything.
	best := all[0].Score
	if got := eng.Query(NewQuery([]string{"audio"}, WithMinScore(best+1))); len(got) != 0 {
		t.Fatalf("MinScore above max still returned %v", got)
	}
	// MinScore at the best score keeps at least the top hit.
	got := eng.Query(NewQuery([]string{"audio"}, WithMinScore(best)))
	if len(got) == 0 || got[0].Score < best {
		t.Fatalf("MinScore at max lost the top hit: %v", got)
	}

	// Querying by concept id alone retrieves that concept's resources.
	c, err := eng.ConceptOf("audio")
	if err != nil {
		t.Fatal(err)
	}
	byConcept := eng.Query(NewQuery(nil, WithConcepts(c)))
	byTag := eng.Query(NewQuery([]string{"audio"}))
	if len(byConcept) != len(byTag) {
		t.Fatalf("concept query: %d results, tag query %d", len(byConcept), len(byTag))
	}
	for i := range byTag {
		if byConcept[i] != byTag[i] {
			t.Fatalf("concept/tag query diverge at %d: %+v vs %+v", i, byConcept[i], byTag[i])
		}
	}

	// Out-of-range concept ids are ignored, not fatal.
	if got := eng.Query(NewQuery(nil, WithConcepts(-1, 9999))); len(got) != 0 {
		t.Fatalf("out-of-range concepts returned %v", got)
	}
}

func TestNonASCIILowercasing(t *testing.T) {
	// strings.ToLower folds non-ASCII letters; the old ASCII-only helper
	// treated "MÜNCHEN" and "münchen" as distinct tags.
	var assignments []Assignment
	for ui := range 6 {
		u := "u" + string(rune('a'+ui))
		upper, lower := "MÜNCHEN", "münchen"
		tag := upper
		if ui%2 == 0 {
			tag = lower
		}
		for _, r := range []string{"r1", "r2", "r3"} {
			assignments = append(assignments, Assignment{User: u, Tag: tag, Resource: r})
		}
		for _, r := range []string{"r1", "r2", "r3"} {
			assignments = append(assignments, Assignment{User: u, Tag: "city", Resource: r})
		}
	}
	cfg := DefaultConfig()
	cfg.ReductionRatios = [3]float64{2, 1, 2}
	cfg.Concepts = 1
	cfg.MinSupport = 2
	cfg.Seed = 1
	eng, err := Build(context.Background(), FromAssignments(assignments), WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	// Both casings must resolve to one merged tag.
	if !eng.HasTag("MÜNCHEN") || !eng.HasTag("münchen") {
		t.Fatalf("non-ASCII case folding broken; tags = %v", eng.Tags())
	}
	d, err := eng.Distance("MÜNCHEN", "münchen")
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("same tag under folding should have distance 0, got %v", d)
	}
}

func TestFromTSVSource(t *testing.T) {
	var sb strings.Builder
	for _, a := range corpus() {
		sb.WriteString(a.User + "\t" + a.Tag + "\t" + a.Resource + "\n")
	}
	eng, err := Build(context.Background(), FromTSV(strings.NewReader(sb.String())), WithConfig(testConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if eng.Stats().Tags != 6 {
		t.Fatalf("stats = %+v", eng.Stats())
	}
}

func TestBuildDefaultsToDefaultConfig(t *testing.T) {
	// No options: DefaultConfig applies (ratio 50, min-support 5). The
	// tiny corpus survives min-support 5 with 12 users × 8 assignments.
	eng, err := Build(context.Background(), FromAssignments(corpus()))
	if err != nil {
		t.Fatal(err)
	}
	if eng.Stats().Assignments == 0 {
		t.Fatal("no assignments")
	}
}
