package cubelsi

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/tagging"
)

// splitCorpus splits the test corpus into a base and a small trailing
// delta (the last code user's assignments). Applying the delta to an
// index built on the base reproduces the full corpus in the original
// insertion order, so a full rebuild over corpus() sees the exact same
// cleaned dataset.
func splitCorpus() (base, delta []Assignment) {
	all := corpus()
	return all[:len(all)-8], all[len(all)-8:]
}

func queriesUnderTest() [][]string {
	return [][]string{{"mp3"}, {"audio", "songs"}, {"golang"}, {"code", "compiler"}, {"songs", "golang"}}
}

func requireSameRankings(t *testing.T, a, b *Engine, label string) {
	t.Helper()
	for _, q := range queriesUnderTest() {
		ra := a.Query(NewQuery(q))
		rb := b.Query(NewQuery(q))
		if len(ra) != len(rb) {
			t.Fatalf("%s: query %v: %d vs %d results", label, q, len(ra), len(rb))
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("%s: query %v result %d: %+v vs %+v", label, q, i, ra[i], rb[i])
			}
		}
	}
}

// TestApplyMatchesFullRebuildGolden is the lifecycle golden parity test:
// warm-start Apply of a delta must produce bit-identical rankings to a
// cold full rebuild over the merged corpus — on the paper-style example
// the warm start is an accelerator, never an approximation.
func TestApplyMatchesFullRebuildGolden(t *testing.T) {
	base, delta := splitCorpus()

	idx, err := NewIndex(context.Background(), FromAssignments(base), WithConfig(testConfig()))
	if err != nil {
		t.Fatal(err)
	}
	v1 := idx.Snapshot().Version()
	if v1 != 1 {
		t.Fatalf("fresh index version %d, want 1", v1)
	}

	rep, err := idx.Apply(context.Background(), Delta{Add: delta})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Version != 2 {
		t.Fatalf("post-apply version %d, want 2", rep.Version)
	}
	if rep.AddedAssignments != len(delta) {
		t.Fatalf("applied %d assignments, want %d", rep.AddedAssignments, len(delta))
	}
	if rep.Sweeps < 1 {
		t.Fatalf("report = %+v", rep)
	}

	full, err := Build(context.Background(), FromAssignments(corpus()), WithConfig(testConfig()))
	if err != nil {
		t.Fatal(err)
	}
	applied := idx.Snapshot()
	if applied.Version() != 2 {
		t.Fatalf("snapshot version %d, want 2", applied.Version())
	}

	// Same cleaned corpus: fingerprints must agree exactly.
	if applied.SourceFingerprint() != full.SourceFingerprint() || applied.SourceFingerprint() == "" {
		t.Fatalf("fingerprints diverge: %q vs %q", applied.SourceFingerprint(), full.SourceFingerprint())
	}
	// Same partition, same rankings.
	tags := full.Tags()
	for _, a := range tags {
		for _, b := range tags {
			ca1, _ := applied.ConceptOf(a)
			cb1, _ := applied.ConceptOf(b)
			ca2, _ := full.ConceptOf(a)
			cb2, _ := full.ConceptOf(b)
			if (ca1 == cb1) != (ca2 == cb2) {
				t.Fatalf("partition disagreement on (%s,%s)", a, b)
			}
		}
	}
	requireSameRankings(t, applied, full, "apply vs rebuild")
}

// TestApplyRemovalsAndNoOp exercises retraction and set semantics.
func TestApplyRemovalsAndNoOp(t *testing.T) {
	base, delta := splitCorpus()
	idx, err := NewIndex(context.Background(), FromAssignments(corpus()), WithConfig(testConfig()))
	if err != nil {
		t.Fatal(err)
	}

	// Removing the tail delta must leave the base corpus: compare against
	// a fresh build over base.
	rep, err := idx.Apply(context.Background(), Delta{Remove: delta})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RemovedAssignments != len(delta) || rep.AddedAssignments != 0 {
		t.Fatalf("report = %+v", rep)
	}
	baseEng, err := Build(context.Background(), FromAssignments(base), WithConfig(testConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := idx.Snapshot().SourceFingerprint(), baseEng.SourceFingerprint(); got != want {
		t.Fatalf("post-removal fingerprint %q, want %q", got, want)
	}

	// Re-adding and re-removing in one delta: removals apply first, so
	// the triple ends up present.
	rep, err = idx.Apply(context.Background(), Delta{Add: delta[:1], Remove: delta[:1]})
	if err != nil {
		t.Fatal(err)
	}
	if rep.AddedAssignments != 1 || rep.RemovedAssignments != 0 {
		t.Fatalf("re-add report = %+v", rep)
	}

	// Removing and re-adding a LIVE triple in one delta is a net no-op:
	// the pair cancels, no rebuild, no version bump.
	vBefore := idx.Snapshot().Version()
	rep, err = idx.Apply(context.Background(), Delta{Add: delta[:1], Remove: delta[:1]})
	if err != nil {
		t.Fatal(err)
	}
	if rep.AddedAssignments != 0 || rep.RemovedAssignments != 0 || rep.Version != vBefore {
		t.Fatalf("net-zero delta not cancelled: %+v", rep)
	}

	// A no-op delta publishes nothing: same version, zero report.
	before := idx.Snapshot().Version()
	rep, err = idx.Apply(context.Background(), Delta{Add: delta[:1], Remove: base[len(base):]})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Version != before || rep.Sweeps != 0 {
		t.Fatalf("no-op report = %+v (version before %d)", rep, before)
	}
	if idx.Snapshot().Version() != before {
		t.Fatal("no-op delta published a new snapshot")
	}

	// Empty fields are rejected up front.
	if _, err := idx.Apply(context.Background(), Delta{Add: []Assignment{{User: "u"}}}); err == nil {
		t.Fatal("want error for empty-field assignment")
	}
}

// TestApplyRollbackOnFailure proves a failed Apply leaves the index
// exactly as it was: removing the whole corpus fails cleaning, and the
// next (valid) Apply still sees every original assignment.
func TestApplyRollbackOnFailure(t *testing.T) {
	idx, err := NewIndex(context.Background(), FromAssignments(corpus()), WithConfig(testConfig()))
	if err != nil {
		t.Fatal(err)
	}
	before := idx.Snapshot()

	if _, err := idx.Apply(context.Background(), Delta{Remove: corpus()}); err == nil {
		t.Fatal("removing the entire corpus must fail cleaning")
	}
	if idx.Snapshot() != before {
		t.Fatal("failed Apply swapped the snapshot")
	}

	// The log rolled back: a subsequent no-op add of an existing triple
	// reports zero changes (the triple is still live).
	rep, err := idx.Apply(context.Background(), Delta{Add: corpus()[:1]})
	if err != nil {
		t.Fatal(err)
	}
	if rep.AddedAssignments != 0 || rep.Version != before.Version() {
		t.Fatalf("post-rollback report = %+v", rep)
	}
}

// TestIndexConcurrentSearchAndApply is the hot-swap race test: readers
// hammer Query and SearchBatch on snapshots while a writer applies
// deltas. Under -race this proves no torn reads; the version assertions
// prove monotonic publication.
func TestIndexConcurrentSearchAndApply(t *testing.T) {
	base, delta := splitCorpus()
	idx, err := NewIndex(context.Background(), FromAssignments(base), WithConfig(testConfig()))
	if err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var maxSeen atomic.Uint64
	var wg sync.WaitGroup
	for range 4 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				eng := idx.Snapshot()
				v := eng.Version()
				// Versions a reader observes never decrease.
				for {
					prev := maxSeen.Load()
					if v <= prev || maxSeen.CompareAndSwap(prev, v) {
						break
					}
				}
				res := eng.Query(NewQuery([]string{"mp3"}, WithLimit(5)))
				for i := 1; i < len(res); i++ {
					if res[i].Score > res[i-1].Score {
						t.Error("torn read: scores out of order")
						return
					}
				}
				batches, err := eng.SearchBatch([]Query{
					NewQuery([]string{"audio"}),
					NewQuery([]string{"golang"}),
				})
				if err != nil || len(batches) != 2 {
					t.Error("torn batch")
					return
				}
			}
		}()
	}

	want := uint64(1)
	for round := range 4 {
		d := Delta{Add: delta}
		if round%2 == 1 {
			d = Delta{Remove: delta}
		}
		rep, err := idx.Apply(context.Background(), d)
		if err != nil {
			t.Fatal(err)
		}
		want++
		if rep.Version != want {
			t.Fatalf("round %d: version %d, want %d", round, rep.Version, want)
		}
	}
	stop.Store(true)
	wg.Wait()
	if maxSeen.Load() > want {
		t.Fatalf("readers saw version %d beyond last published %d", maxSeen.Load(), want)
	}
}

// TestSaveLoadPreservesLifecycle: version, fingerprint and warm factors
// survive the model file, and a loaded model warm-starts a NewIndex.
func TestSaveLoadPreservesLifecycle(t *testing.T) {
	base, delta := splitCorpus()
	idx, err := NewIndex(context.Background(), FromAssignments(base), WithConfig(testConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.Apply(context.Background(), Delta{Add: delta}); err != nil {
		t.Fatal(err)
	}
	eng := idx.Snapshot()

	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Version() != eng.Version() {
		t.Fatalf("version %d, want %d", restored.Version(), eng.Version())
	}
	if restored.SourceFingerprint() != eng.SourceFingerprint() || restored.SourceFingerprint() == "" {
		t.Fatalf("fingerprint %q, want %q", restored.SourceFingerprint(), eng.SourceFingerprint())
	}
	if restored.Stats() != eng.Stats() {
		t.Fatalf("stats changed: %+v vs %+v", restored.Stats(), eng.Stats())
	}

	// The restored model warm-starts the next day's index build over the
	// full corpus; the lineage version keeps counting.
	idx2, err := NewIndex(context.Background(), FromAssignments(corpus()),
		WithConfig(testConfig()), WithPreviousModel(restored))
	if err != nil {
		t.Fatal(err)
	}
	warmed := idx2.Snapshot()
	if warmed.Version() != restored.Version()+1 {
		t.Fatalf("warm-started version %d, want %d", warmed.Version(), restored.Version()+1)
	}
	full, err := Build(context.Background(), FromAssignments(corpus()), WithConfig(testConfig()))
	if err != nil {
		t.Fatal(err)
	}
	requireSameRankings(t, warmed, full, "warm-started NewIndex vs cold Build")
}

// TestApplyMatchesCleanedNames pins delta set semantics to the names
// the engine exposes: with Lowercase on, a triple that arrived as
// "Jazz" is removable as "jazz", and re-adding a case variant of a
// live triple is a no-op instead of a phantom rebuild.
func TestApplyMatchesCleanedNames(t *testing.T) {
	assignments := corpus()
	// The corpus arrives with a mixed-case spelling of one triple.
	mixed := assignments[0]
	mixed.Tag = strings.ToUpper(mixed.Tag)
	assignments[0] = mixed

	idx, err := NewIndex(context.Background(), FromAssignments(assignments), WithConfig(testConfig()))
	if err != nil {
		t.Fatal(err)
	}
	before := idx.Snapshot().Version()

	// Adding the lowercase variant of the live mixed-case triple must be
	// a no-op, not an effective add that pays for a rebuild.
	lower := mixed
	lower.Tag = strings.ToLower(lower.Tag)
	rep, err := idx.Apply(context.Background(), Delta{Add: []Assignment{lower}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.AddedAssignments != 0 || rep.Version != before {
		t.Fatalf("case-variant add not a no-op: %+v", rep)
	}

	// Removing by the engine-visible (lowercase) name must retract the
	// assignment that arrived mixed-case.
	rep, err = idx.Apply(context.Background(), Delta{Remove: []Assignment{lower}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RemovedAssignments != 1 {
		t.Fatalf("engine-visible removal missed the mixed-case triple: %+v", rep)
	}
}

// TestNewIndexRejectsExactSpectral: the exact-spectral reproduction
// mode is one-shot; the lifecycle would silently switch clustering
// algorithms on update, so NewIndex refuses it up front.
func TestNewIndexRejectsExactSpectral(t *testing.T) {
	_, err := NewIndex(context.Background(), FromAssignments(corpus()),
		WithConfig(testConfig()), WithExactSpectral())
	if err == nil || !strings.Contains(err.Error(), "one-shot") {
		t.Fatalf("err = %v, want exact-spectral rejection", err)
	}
}

// TestWarmStartPathValidatesRatios: the warm-started NewIndex build
// must reject invalid reduction ratios with the same error the cold
// path returns, not panic inside tucker.FromRatios.
func TestWarmStartPathValidatesRatios(t *testing.T) {
	prev := buildCorpus(t)
	cfg := testConfig()
	cfg.ReductionRatios = [3]float64{0.5, 2, 2}
	_, err := NewIndex(context.Background(), FromAssignments(corpus()),
		WithConfig(cfg), WithPreviousModel(prev))
	if err == nil || !strings.Contains(err.Error(), "reduction ratio") {
		t.Fatalf("err = %v, want reduction-ratio error", err)
	}
}

// TestAssignmentLogCompaction: tombstones are dropped once they
// outnumber live entries, and the materialized dataset is unaffected.
func TestAssignmentLogCompaction(t *testing.T) {
	keep := Assignment{User: "u", Tag: "keep", Resource: "r"}
	raw := tagging.NewDataset()
	raw.Add(keep.User, keep.Tag, keep.Resource)
	l := newAssignmentLog(raw, true)

	// Churn many distinct ephemeral triples through the log.
	for i := range 100 {
		a := Assignment{User: "u", Tag: "t" + string(rune('a'+i%26)) + string(rune('a'+i/26)), Resource: "r"}
		l.apply(Delta{Add: []Assignment{a}})
		l.apply(Delta{Remove: []Assignment{a}})
		l.compact()
	}
	if len(l.order) > 3 || len(l.live) > 3 {
		t.Fatalf("log grew with churn: %d entries, %d keys (dead=%d)", len(l.order), len(l.live), l.dead)
	}
	ds := l.dataset()
	if got := ds.Stats().Assignments; got != 1 {
		t.Fatalf("dataset has %d assignments, want the 1 live one", got)
	}
	if _, ok := ds.Tags.Lookup("keep"); !ok {
		t.Fatal("live assignment lost in compaction")
	}
}

// TestSaveWithoutWarmFactors: the lean save drops the warm section —
// strictly smaller file, identical rankings, but no warm-start
// capability on reload.
func TestSaveWithoutWarmFactors(t *testing.T) {
	eng := buildCorpus(t)
	var full, lean bytes.Buffer
	if err := eng.Save(&full); err != nil {
		t.Fatal(err)
	}
	if err := eng.Save(&lean, WithoutWarmFactors()); err != nil {
		t.Fatal(err)
	}
	if lean.Len() >= full.Len() {
		t.Fatalf("lean model (%d bytes) not smaller than full (%d bytes)", lean.Len(), full.Len())
	}

	leanEng, err := Load(&lean)
	if err != nil {
		t.Fatal(err)
	}
	requireSameRankings(t, leanEng, eng, "lean save")
	if _, err := NewIndex(context.Background(), FromAssignments(corpus()),
		WithConfig(testConfig()), WithPreviousModel(leanEng)); err == nil {
		t.Fatal("lean model must not warm-start")
	}
}

// TestWithPreviousModelRejectsFactorFreeEngines: a pre-v3 model without
// factors cannot warm-start, and the error says so.
func TestWithPreviousModelRejectsFactorFreeEngines(t *testing.T) {
	v1Bytes, _, _ := buildV1Bytes(t, false) // v1 file without a decomposition
	legacy, err := Load(bytes.NewReader(v1Bytes))
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewIndex(context.Background(), FromAssignments(corpus()),
		WithConfig(testConfig()), WithPreviousModel(legacy))
	if err == nil || !strings.Contains(err.Error(), "warm-start") {
		t.Fatalf("err = %v, want warm-start capability error", err)
	}
}
