package cubelsi

import (
	"context"
	"testing"
)

// TestWithShardsBitIdenticalEngine pins the public contract of
// WithShards: a sharded build serves exactly what the monolithic build
// serves — same stats, same concept partition, same rankings with equal
// scores — and the incremental lifecycle accepts the option the same
// way.
func TestWithShardsBitIdenticalEngine(t *testing.T) {
	single := buildCorpus(t)
	sharded := buildCorpus(t, WithConfig(testConfig()), WithShards(4))

	if single.Stats() != sharded.Stats() {
		t.Fatalf("stats diverge: %+v vs %+v", single.Stats(), sharded.Stats())
	}
	for _, tag := range single.Tags() {
		a, err := single.ConceptOf(tag)
		if err != nil {
			t.Fatal(err)
		}
		b, err := sharded.ConceptOf(tag)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("tag %q: concept %d vs %d", tag, a, b)
		}
		ra := single.Query(NewQuery([]string{tag}))
		rb := sharded.Query(NewQuery([]string{tag}))
		if len(ra) != len(rb) {
			t.Fatalf("query %q: %d vs %d results", tag, len(ra), len(rb))
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("query %q result %d: %+v vs %+v", tag, i, ra[i], rb[i])
			}
		}
	}

	// The lifecycle path honors the option too: a sharded Apply must
	// publish the same rankings as a monolithic one.
	ctx := context.Background()
	mk := func(opts ...BuildOption) *Engine {
		t.Helper()
		idx, err := NewIndex(ctx, FromAssignments(corpus()), opts...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := idx.Apply(ctx, Delta{Add: []Assignment{
			{User: "zz", Tag: "audio", Resource: "m1"},
			{User: "zz", Tag: "mp3", Resource: "m2"},
		}}); err != nil {
			t.Fatal(err)
		}
		return idx.Snapshot()
	}
	e1 := mk(WithConfig(testConfig()))
	e4 := mk(WithConfig(testConfig()), WithShards(4))
	for _, tag := range e1.Tags() {
		ra, rb := e1.Query(NewQuery([]string{tag})), e4.Query(NewQuery([]string{tag}))
		if len(ra) != len(rb) {
			t.Fatalf("lifecycle query %q: %d vs %d results", tag, len(ra), len(rb))
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("lifecycle query %q result %d: %+v vs %+v", tag, i, ra[i], rb[i])
			}
		}
	}
}
